"""Property test: gridding and interpolation are exact adjoints.

For every engine, gridding ``G`` (values -> grid) and interpolation
``I`` (grid -> values) apply the same real weight matrix ``w`` and its
transpose, so ``<G v, g> == <v, I g>`` (complex inner products) up to
floating-point roundoff.  Hypothesis drives random trajectories, both
dims, and batched K > 1 across the serial, parallel, compiled, and
CSR-backed engines.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gridding import GriddingSetup, make_gridder
from repro.kernels import KernelLUT, beatty_kernel

SETUPS = {
    2: GriddingSetup((16, 16), KernelLUT(beatty_kernel(4, 2.0), 32)),
    3: GriddingSetup((16, 16, 16), KernelLUT(beatty_kernel(4, 2.0), 32)),
}

ENGINES = [
    ("slice_and_dice", {}),
    (
        "slice_and_dice_parallel",
        {"workers": 2, "backend": "thread", "min_parallel_ops": 0},
    ),
    ("slice_and_dice_compiled", {}),
    ("slice_and_dice_compiled", {"backend": "csr"}),
]


def inner(a: np.ndarray, b: np.ndarray) -> complex:
    return complex(np.vdot(a, b))


@pytest.mark.parametrize(
    "name,kwargs", ENGINES, ids=["serial", "parallel", "compiled", "csr"]
)
@given(
    seed=st.integers(0, 2**32 - 1),
    m=st.integers(1, 40),
    ndim=st.sampled_from([2, 3]),
)
@settings(max_examples=25, deadline=None)
def test_grid_interp_adjoint(name, kwargs, seed, m, ndim):
    setup = SETUPS[ndim]
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, 1, size=(m, ndim)) * np.asarray(setup.grid_shape)
    values = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    grid = rng.standard_normal(setup.grid_shape) + 1j * rng.standard_normal(
        setup.grid_shape
    )
    g = make_gridder(name, setup, **kwargs)
    lhs = inner(g.grid(coords, values), grid)
    rhs = inner(values, g.interp(grid, coords))
    scale = max(abs(lhs), abs(rhs), 1e-30)
    assert abs(lhs - rhs) <= 1e-10 * scale


@pytest.mark.parametrize(
    "name,kwargs", ENGINES, ids=["serial", "parallel", "compiled", "csr"]
)
@given(
    seed=st.integers(0, 2**32 - 1),
    m=st.integers(1, 30),
    k=st.integers(2, 4),
    ndim=st.sampled_from([2, 3]),
)
@settings(max_examples=15, deadline=None)
def test_batched_grid_interp_adjoint(name, kwargs, seed, m, k, ndim):
    setup = SETUPS[ndim]
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, 1, size=(m, ndim)) * np.asarray(setup.grid_shape)
    vstack = rng.standard_normal((k, m)) + 1j * rng.standard_normal((k, m))
    gstack = rng.standard_normal((k,) + setup.grid_shape) + 1j * rng.standard_normal(
        (k,) + setup.grid_shape
    )
    g = make_gridder(name, setup, **kwargs)
    grids = g.grid_batch(coords, vstack)
    samples = g.interp_batch(gstack, coords)
    for j in range(k):
        lhs = inner(grids[j], gstack[j])
        rhs = inner(vstack[j], samples[j])
        scale = max(abs(lhs), abs(rhs), 1e-30)
        assert abs(lhs - rhs) <= 1e-10 * scale
