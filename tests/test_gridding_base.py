"""Unit tests for the shared gridding infrastructure."""

import numpy as np
import pytest

from repro.gridding import GriddingSetup, GriddingStats, window_contributions
from repro.gridding.base import offset_combinations, scatter_add_complex
from repro.kernels import KernelLUT, beatty_kernel


class TestGriddingSetup:
    def test_properties(self, small_setup):
        assert small_setup.ndim == 2
        assert small_setup.width == 6
        assert small_setup.n_grid_points == 1024

    def test_rejects_tiny_grid(self):
        lut = KernelLUT(beatty_kernel(6, 2.0), 32)
        with pytest.raises(ValueError, match="smaller than window"):
            GriddingSetup((4, 4), lut)

    def test_rejects_zero_dim(self):
        lut = KernelLUT(beatty_kernel(2, 2.0), 32)
        with pytest.raises(ValueError, match=">= 1"):
            GriddingSetup((0, 8), lut)

    def test_check_coords_wraps(self, small_setup):
        out = small_setup.check_coords(np.asarray([[33.0, -1.0]]))
        np.testing.assert_allclose(out, [[1.0, 31.0]])

    def test_check_coords_shape_error(self, small_setup):
        with pytest.raises(ValueError, match="shape"):
            small_setup.check_coords(np.zeros((3, 3)))


class TestWindowContributions:
    def test_shapes(self, small_setup):
        coords = np.asarray([[10.2, 20.7], [3.0, 3.0]])
        idx, wgt = window_contributions(small_setup, coords)
        assert idx.shape == (2, 36)
        assert wgt.shape == (2, 36)

    def test_indices_in_range(self, small_setup, rng):
        coords = rng.uniform(0, 32, (50, 2))
        idx, _ = window_contributions(small_setup, coords)
        assert idx.min() >= 0 and idx.max() < 1024

    def test_weights_nonnegative(self, small_setup, rng):
        coords = rng.uniform(0, 32, (50, 2))
        _, wgt = window_contributions(small_setup, coords)
        assert np.all(wgt >= 0)

    def test_weight_is_separable_product(self, small_setup):
        """2-D weight equals the product of the 1-D lookups."""
        lut = small_setup.lut
        coords = np.asarray([[10.3, 20.8]])
        idx, wgt = window_contributions(small_setup, coords)
        total = wgt.sum()
        onedim = lambda x: lut.table[
            lut.index_of((x + 3.0) - np.floor(x + 3.0) + np.arange(6))
        ].sum()
        assert total == pytest.approx(onedim(10.3) * onedim(20.8), rel=1e-12)

    def test_on_grid_sample_peak_weight(self, small_setup):
        """A sample exactly on a grid point gives that point weight 1."""
        coords = np.asarray([[16.0, 16.0]])
        idx, wgt = window_contributions(small_setup, coords)
        peak = idx[0][np.argmax(wgt[0])]
        assert peak == 16 * 32 + 16
        assert wgt[0].max() == pytest.approx(1.0)

    def test_wrapping_at_edges(self, small_setup):
        """A sample at the grid origin touches points on all four
        corners of the array (the torus of Fig. 2)."""
        coords = np.asarray([[0.0, 0.0]])
        idx, wgt = window_contributions(small_setup, coords)
        rows = idx[0] // 32
        cols = idx[0] % 32
        assert {0, 1, 2, 3, 29, 30, 31} >= set(np.unique(rows).tolist())
        assert rows.max() >= 29 and rows.min() == 0
        assert cols.max() >= 29 and cols.min() == 0

    def test_window_point_count_exact(self, tiny_setup):
        coords = np.asarray([[7.5, 3.2]])
        idx, _ = window_contributions(tiny_setup, coords)
        assert idx.shape[1] == 16  # W=4 squared

    def test_1d_setup(self):
        lut = KernelLUT(beatty_kernel(4, 2.0), 32)
        setup = GriddingSetup((16,), lut)
        idx, wgt = window_contributions(setup, np.asarray([[8.5]]))
        assert idx.shape == (1, 4)
        # affected points: floor(8.5+2)=10, offsets back: 10,9,8,7
        assert set(idx[0].tolist()) == {7, 8, 9, 10}


class TestScatterAdd:
    def test_matches_add_at(self, rng):
        grid = np.zeros(50, dtype=np.complex128)
        ref = np.zeros(50, dtype=np.complex128)
        idx = rng.integers(0, 50, (20, 4))
        vals = rng.standard_normal((20, 4)) + 1j * rng.standard_normal((20, 4))
        scatter_add_complex(grid, idx, vals)
        np.add.at(ref, idx.ravel(), vals.ravel())
        np.testing.assert_allclose(grid, ref, rtol=1e-12)


class TestStats:
    def test_as_dict_roundtrip(self):
        s = GriddingStats(boundary_checks=5, interpolations=3)
        d = s.as_dict()
        assert d["boundary_checks"] == 5
        assert d["interpolations"] == 3
        assert set(d) == {
            "boundary_checks",
            "interpolations",
            "samples_processed",
            "presort_operations",
            "grid_accesses",
            "lut_lookups",
            "simd_active_lanes",
            "simd_lane_slots",
            "cache_hits",
            "cache_misses",
            "table_build_seconds",
            "table_bytes",
            "plan_compile_seconds",
            "plan_nnz",
            "workers_used",
            "parallel_backend",
            "shard_plan",
            "worker_seconds",
            "kernel",
            "exec_lane",
            "quality",
            "degradations",
            "chunks",
            "chunk_bytes",
            "peak_bytes",
        }


class TestOffsetCombinations:
    def test_count(self):
        assert len(offset_combinations(6, 2)) == 36
        assert len(offset_combinations(4, 3)) == 64

    def test_contents(self):
        combos = offset_combinations(2, 2)
        assert combos == [(0, 0), (0, 1), (1, 0), (1, 1)]


class TestInterp:
    def test_constant_grid_interpolates_to_kernel_sum(self, small_setup, rng):
        """Interpolating a constant grid returns (sum of window
        weights) x constant for every sample."""
        from repro.gridding import NaiveGridder

        g = NaiveGridder(small_setup)
        grid = np.full((32, 32), 2.0, dtype=np.complex128)
        coords = rng.uniform(0, 32, (20, 2))
        vals = g.interp(grid, coords)
        _, wgt = window_contributions(small_setup, coords)
        np.testing.assert_allclose(vals, 2.0 * wgt.sum(axis=1), rtol=1e-12)

    def test_interp_empty(self, small_setup):
        from repro.gridding import NaiveGridder

        g = NaiveGridder(small_setup)
        out = g.interp(np.zeros((32, 32), dtype=complex), np.zeros((0, 2)))
        assert out.shape == (0,)

    def test_interp_grid_shape_mismatch(self, small_setup):
        from repro.gridding import NaiveGridder

        g = NaiveGridder(small_setup)
        with pytest.raises(ValueError, match="grid shape"):
            g.interp(np.zeros((16, 16), dtype=complex), np.zeros((1, 2)))
