"""Batched multi-RHS gridding: bit-identity, caching, lane accounting.

The contract under test (ISSUE 1 tentpole):

- ``grid_batch``/``interp_batch`` are *bit-identical* (``array_equal``,
  not ``allclose``) to stacking K independent single calls, for 2D and
  3D problems and both Slice-and-Dice engines;
- the per-axis select tables are cached per trajectory fingerprint
  (same coords content -> hit; mutated coords -> miss;
  ``invalidate_cache()`` -> miss) and the events are visible in
  ``GriddingStats``;
- batch stats charge select work once and value work K times;
- the blocked engine's SIMD lane slots come from actual per-block work.
"""

import numpy as np
import pytest

from repro.core import SliceAndDiceGridder
from repro.gridding import (
    GriddingSetup,
    NaiveGridder,
    SparseMatrixGridder,
)
from repro.kernels import KernelLUT, beatty_kernel
from repro.nufft import NufftPlan
from repro.trajectories import random_trajectory


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


def make_setup(ndim: int) -> GriddingSetup:
    g = 32 if ndim == 2 else 16
    return GriddingSetup((g,) * ndim, KernelLUT(beatty_kernel(4, 2.0), 64))


def make_problem(setup, rng, m=400, k=4):
    g = np.asarray(setup.grid_shape, dtype=np.float64)
    coords = rng.uniform(0, 1, (m, setup.ndim)) * g
    values = rng.standard_normal((k, m)) + 1j * rng.standard_normal((k, m))
    grids = rng.standard_normal((k,) + setup.grid_shape) + 1j * rng.standard_normal(
        (k,) + setup.grid_shape
    )
    return coords, values, grids


class TestBitIdentity:
    @pytest.mark.parametrize("ndim", [2, 3])
    @pytest.mark.parametrize("engine", ["columns", "blocked"])
    def test_grid_batch_matches_singles(self, ndim, engine, rng):
        setup = make_setup(ndim)
        coords, values, _ = make_problem(setup, rng)
        gridder = SliceAndDiceGridder(setup, tile_size=8, engine=engine)
        singles = np.stack([gridder.grid(coords, v) for v in values])
        batch = gridder.grid_batch(coords, values)
        assert np.array_equal(batch, singles)

    @pytest.mark.parametrize("ndim", [2, 3])
    @pytest.mark.parametrize("engine", ["columns", "blocked"])
    def test_interp_batch_matches_singles(self, ndim, engine, rng):
        setup = make_setup(ndim)
        coords, _, grids = make_problem(setup, rng)
        gridder = SliceAndDiceGridder(setup, tile_size=8, engine=engine)
        singles = np.stack([gridder.interp(g, coords) for g in grids])
        batch = gridder.interp_batch(grids, coords)
        assert np.array_equal(batch, singles)

    def test_base_class_fallback_is_exact(self, rng):
        """The default loop fallback is K single calls by construction."""
        setup = make_setup(2)
        coords, values, grids = make_problem(setup, rng)
        gridder = NaiveGridder(setup)
        assert np.array_equal(
            gridder.grid_batch(coords, values),
            np.stack([gridder.grid(coords, v) for v in values]),
        )
        assert np.array_equal(
            gridder.interp_batch(grids, coords),
            np.stack([gridder.interp(g, coords) for g in grids]),
        )

    def test_sparse_matrix_batch(self, rng):
        """Sparse mat-mat batching matches per-vector mat-vecs closely."""
        setup = make_setup(2)
        coords, values, grids = make_problem(setup, rng)
        gridder = SparseMatrixGridder(setup)
        singles = np.stack([gridder.grid(coords, v) for v in values])
        np.testing.assert_allclose(
            gridder.grid_batch(coords, values), singles, rtol=1e-12, atol=1e-14
        )
        singles_i = np.stack([gridder.interp(g, coords) for g in grids])
        np.testing.assert_allclose(
            gridder.interp_batch(grids, coords), singles_i, rtol=1e-12, atol=1e-14
        )

    def test_single_vector_promotion(self, rng):
        setup = make_setup(2)
        coords, values, grids = make_problem(setup, rng, k=1)
        gridder = SliceAndDiceGridder(setup)
        assert gridder.grid_batch(coords, values[0]).shape == (1,) + setup.grid_shape
        assert gridder.interp_batch(grids[0], coords).shape == (1, coords.shape[0])

    def test_batch_shape_validation(self, rng):
        setup = make_setup(2)
        coords, values, _ = make_problem(setup, rng)
        gridder = SliceAndDiceGridder(setup)
        with pytest.raises(ValueError, match="values_stack"):
            gridder.grid_batch(coords, values[:, :-1])
        with pytest.raises(ValueError, match="grid_stack"):
            gridder.interp_batch(np.zeros((2, 8, 8), dtype=complex), coords)


class TestTableCache:
    @pytest.mark.parametrize("engine", ["columns", "blocked"])
    def test_same_coords_hits(self, engine, rng):
        setup = make_setup(2)
        coords, values, _ = make_problem(setup, rng)
        gridder = SliceAndDiceGridder(setup, engine=engine)
        gridder.grid(coords, values[0])
        assert gridder.stats.cache_misses == 1
        assert gridder.stats.cache_hits == 0
        assert gridder.stats.table_build_seconds > 0.0
        gridder.grid(coords, values[1])
        assert gridder.stats.cache_hits == 1
        assert gridder.stats.cache_misses == 0
        assert gridder.stats.table_build_seconds == 0.0

    def test_same_content_different_object_hits(self, rng):
        """The fingerprint is content-based: a copy of the trajectory
        (or the fresh array ``check_coords`` makes per call) still hits."""
        setup = make_setup(2)
        coords, values, _ = make_problem(setup, rng)
        gridder = SliceAndDiceGridder(setup)
        gridder.grid(coords, values[0])
        gridder.grid(coords.copy(), values[1])
        assert gridder.stats.cache_hits == 1

    def test_interp_shares_cache_with_grid(self, rng):
        setup = make_setup(2)
        coords, values, grids = make_problem(setup, rng)
        gridder = SliceAndDiceGridder(setup)
        gridder.grid(coords, values[0])
        gridder.interp(grids[0], coords)
        assert gridder.stats.cache_hits == 1

    def test_mutated_coords_miss(self, rng):
        setup = make_setup(2)
        coords, values, _ = make_problem(setup, rng)
        gridder = SliceAndDiceGridder(setup)
        gridder.grid(coords, values[0])
        mutated = coords.copy()
        mutated[0, 0] = (mutated[0, 0] + 1.0) % setup.grid_shape[0]
        gridder.grid(mutated, values[0])
        assert gridder.stats.cache_misses == 1
        assert gridder.stats.cache_hits == 0

    def test_invalidate_cache(self, rng):
        setup = make_setup(2)
        coords, values, _ = make_problem(setup, rng)
        gridder = SliceAndDiceGridder(setup)
        gridder.grid(coords, values[0])
        gridder.invalidate_cache()
        gridder.grid(coords, values[0])
        assert gridder.stats.cache_misses == 1

    def test_cache_disabled(self, rng):
        setup = make_setup(2)
        coords, values, _ = make_problem(setup, rng)
        gridder = SliceAndDiceGridder(setup, table_cache_size=0)
        gridder.grid(coords, values[0])
        gridder.grid(coords, values[1])
        assert gridder.stats.cache_misses == 1
        assert gridder.stats.cache_hits == 0

    def test_fifo_eviction(self, rng):
        setup = make_setup(2)
        gridder = SliceAndDiceGridder(setup, table_cache_size=2)
        trajectories = [make_problem(setup, rng)[0] for _ in range(3)]
        vals = np.ones(400, dtype=complex)
        for coords in trajectories:
            gridder.grid(coords, vals)
        gridder.grid(trajectories[0], vals)  # evicted by the third entry
        assert gridder.stats.cache_misses == 1
        gridder.grid(trajectories[2], vals)  # still resident
        assert gridder.stats.cache_hits == 1

    def test_cached_results_identical(self, rng):
        setup = make_setup(2)
        coords, values, _ = make_problem(setup, rng)
        cold = SliceAndDiceGridder(setup, table_cache_size=0)
        warm = SliceAndDiceGridder(setup)
        warm.grid(coords, values[0])  # populate
        assert np.array_equal(
            warm.grid(coords, values[1]), cold.grid(coords, values[1])
        )


class TestBatchStats:
    def test_select_work_charged_once(self, rng):
        """Batched stats: boundary checks / LUT reads are per select
        pass, MACs and grid accesses scale with K."""
        setup = make_setup(2)
        coords, values, _ = make_problem(setup, rng)
        k = values.shape[0]
        m = coords.shape[0]
        gridder = SliceAndDiceGridder(setup)
        gridder.grid(coords, values[0])
        single = gridder.stats
        gridder.grid_batch(coords, values)
        batch = gridder.stats
        assert batch.boundary_checks == m * gridder.layout.n_columns == single.boundary_checks
        assert batch.interpolations == k * single.interpolations
        assert batch.grid_accesses == k * single.grid_accesses
        assert batch.lut_lookups == single.lut_lookups
        assert batch.samples_processed == m

    def test_fallback_stats_sum(self, rng):
        setup = make_setup(2)
        coords, values, _ = make_problem(setup, rng)
        gridder = NaiveGridder(setup)
        gridder.grid(coords, values[0])
        single = gridder.stats
        gridder.grid_batch(coords, values)
        assert gridder.stats.boundary_checks == values.shape[0] * single.boundary_checks


class TestBlockedLaneSlots:
    def test_slots_from_per_block_work(self, rng):
        """Lane slots equal the sum over non-empty blocks of
        slice-length x columns — derived from each block's actual scan,
        not the whole-stream formula applied once."""
        setup = make_setup(2)
        coords, values, _ = make_problem(setup, rng, m=101)  # uneven split
        n_blocks = 7
        gridder = SliceAndDiceGridder(setup, engine="blocked", n_blocks=n_blocks)
        gridder.grid(coords, values[0])
        bounds = np.linspace(0, coords.shape[0], n_blocks + 1).astype(np.int64)
        expected = sum(
            int(bounds[b + 1] - bounds[b]) * gridder.layout.n_columns
            for b in range(n_blocks)
            if bounds[b + 1] > bounds[b]
        )
        assert gridder.stats.simd_lane_slots == expected

    def test_columns_engine_unchanged(self, rng):
        setup = make_setup(2)
        coords, values, _ = make_problem(setup, rng)
        gridder = SliceAndDiceGridder(setup, engine="columns")
        gridder.grid(coords, values[0])
        assert gridder.stats.simd_lane_slots == coords.shape[0] * gridder.layout.n_columns


class TestPlanBatchRouting:
    @pytest.fixture
    def plan(self):
        return NufftPlan((16, 16), random_trajectory(80, 2, rng=0), width=4)

    def test_adjoint_accepts_stack(self, plan, rng):
        vals = rng.standard_normal((3, 80)) + 1j * rng.standard_normal((3, 80))
        stacked = plan.adjoint(vals)
        assert stacked.shape == (3, 16, 16)
        for b in range(3):
            np.testing.assert_allclose(stacked[b], plan.adjoint(vals[b]), rtol=1e-12)

    def test_forward_accepts_stack(self, plan, rng):
        imgs = rng.standard_normal((3, 16, 16)) + 1j * rng.standard_normal((3, 16, 16))
        stacked = plan.forward(imgs)
        assert stacked.shape == (3, 80)
        for b in range(3):
            np.testing.assert_allclose(stacked[b], plan.forward(imgs[b]), rtol=1e-12)

    def test_plan_cache_amortized_across_calls(self, plan, rng):
        vals = rng.standard_normal(80) + 1j * rng.standard_normal(80)
        plan.adjoint(vals)
        plan.adjoint(vals)  # fixed trajectory -> table cache hit
        assert plan.gridder.stats.cache_hits == 1
        assert plan.gridder.stats.table_build_seconds == 0.0
