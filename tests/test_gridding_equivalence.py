"""Cross-gridder equivalence — the central correctness invariant.

DESIGN.md: all four gridders (and the JIGSAW functional simulator up to
fixed-point quantization) must produce identical grids for identical
inputs.  Property-based tests drive this across random problems.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gridding import GriddingSetup, available_gridders, make_gridder
from repro.kernels import KernelLUT, beatty_kernel
from tests.conftest import random_samples

GRIDDERS = [
    "naive",
    "output_parallel",
    "binning",
    "slice_and_dice",
    "slice_and_dice_parallel",
]

#: force the parallel engine onto its thread pool even for tiny test
#: problems (auto-selection would fall back to serial and hide bugs)
PARALLEL_KW = {"workers": 2, "backend": "thread", "min_parallel_ops": 0}


def engine_kwargs(name: str) -> dict:
    return dict(PARALLEL_KW) if name == "slice_and_dice_parallel" else {}


def build_setup(g: int, w: int, lut_l: int = 64) -> GriddingSetup:
    return GriddingSetup((g, g), KernelLUT(beatty_kernel(w, 2.0), lut_l))


@pytest.mark.parametrize("name", GRIDDERS[1:])
class TestPairwise:
    def test_matches_naive_random(self, name, rng):
        setup = build_setup(32, 6)
        coords, vals = random_samples(rng, 300, (32, 32))
        ref = make_gridder("naive", setup).grid(coords, vals)
        out = make_gridder(name, setup, **engine_kwargs(name)).grid(coords, vals)
        np.testing.assert_allclose(out, ref, rtol=1e-10, atol=1e-12)

    def test_matches_naive_clustered(self, name, rng):
        """Clustered samples (rosette-like center hot spot) stress
        duplicate/bin handling."""
        setup = build_setup(32, 6)
        coords = 16 + rng.standard_normal((200, 2)) * 1.5
        vals = rng.standard_normal(200) + 1j * rng.standard_normal(200)
        ref = make_gridder("naive", setup).grid(coords, vals)
        out = make_gridder(name, setup, **engine_kwargs(name)).grid(coords, vals)
        np.testing.assert_allclose(out, ref, rtol=1e-10, atol=1e-12)

    def test_matches_naive_on_tile_edges(self, name):
        """Samples exactly on tile boundaries are the classic off-by-one
        trap for binning and decomposition arithmetic."""
        setup = build_setup(32, 6)
        edges = np.asarray(
            [[8.0, 8.0], [16.0, 0.0], [0.0, 24.0], [31.999, 31.999], [8.0, 15.5]]
        )
        vals = np.ones(len(edges), dtype=complex)
        ref = make_gridder("naive", setup).grid(edges, vals)
        out = make_gridder(name, setup).grid(edges, vals)
        np.testing.assert_allclose(out, ref, rtol=1e-10, atol=1e-12)


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        m=st.integers(1, 60),
        w=st.sampled_from([2, 4, 6, 8]),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_all_gridders_agree(self, m, w, seed):
        rng = np.random.default_rng(seed)
        setup = build_setup(16, w, lut_l=32)
        coords = rng.uniform(0, 16, (m, 2))
        vals = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        grids = {}
        for name in GRIDDERS:
            kwargs = engine_kwargs(name)
            if name in ("binning", "slice_and_dice", "slice_and_dice_parallel"):
                kwargs["tile_size"] = 8
            grids[name] = make_gridder(name, setup, **kwargs).grid(coords, vals)
        ref = grids["naive"]
        for name in GRIDDERS[1:]:
            np.testing.assert_allclose(grids[name], ref, rtol=1e-9, atol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_gridding_is_linear(self, seed):
        rng = np.random.default_rng(seed)
        setup = build_setup(16, 4, lut_l=32)
        coords = rng.uniform(0, 16, (20, 2))
        a = rng.standard_normal(20) + 1j * rng.standard_normal(20)
        b = rng.standard_normal(20) + 1j * rng.standard_normal(20)
        g = make_gridder("slice_and_dice", setup)
        lhs = g.grid(coords, a + 2j * b)
        rhs = g.grid(coords, a) + 2j * g.grid(coords, b)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), shift=st.integers(1, 15))
    def test_translation_equivariance(self, seed, shift):
        """Shifting all samples by an integer grid offset circularly
        shifts the output grid (torus translation symmetry)."""
        rng = np.random.default_rng(seed)
        setup = build_setup(16, 4, lut_l=32)
        coords = rng.uniform(0, 16, (20, 2))
        vals = rng.standard_normal(20) + 1j * rng.standard_normal(20)
        g = make_gridder("slice_and_dice", setup)
        base = g.grid(coords, vals)
        moved = g.grid(coords + shift, vals)
        np.testing.assert_allclose(
            moved, np.roll(base, (shift, shift), axis=(0, 1)), rtol=1e-9, atol=1e-10
        )

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_adjointness_of_grid_and_interp(self, seed):
        """<grid(v), g> == <v, interp(g)> for every gridder (they share
        interp, so checking one pair per gridder covers the matrix
        transpose identity)."""
        rng = np.random.default_rng(seed)
        setup = build_setup(16, 4, lut_l=32)
        coords = rng.uniform(0, 16, (15, 2))
        v = rng.standard_normal(15) + 1j * rng.standard_normal(15)
        g_img = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
        gr = make_gridder("naive", setup)
        lhs = np.vdot(g_img, gr.grid(coords, v))
        rhs = np.vdot(gr.interp(g_img.conj().conj(), coords), v).conjugate()
        assert abs(lhs - rhs.conjugate()) < 1e-9 * max(abs(lhs), 1.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_total_mass_conserved(self, seed):
        """sum(grid) == sum_j v_j * (separable weight sums) — no sample
        leaks mass off the torus."""
        rng = np.random.default_rng(seed)
        setup = build_setup(16, 4, lut_l=32)
        coords = rng.uniform(0, 16, (25, 2))
        vals = rng.standard_normal(25) + 1j * rng.standard_normal(25)
        from repro.gridding import window_contributions

        _, wgt = window_contributions(setup, coords)
        expect = np.sum(vals * wgt.sum(axis=1))
        out = make_gridder("slice_and_dice", setup).grid(coords, vals)
        assert out.sum() == pytest.approx(expect, rel=1e-9)
