"""Unit tests for the individual baseline gridders."""

import numpy as np
import pytest

from repro.gridding import (
    BinningGridder,
    GriddingSetup,
    NaiveGridder,
    OutputParallelGridder,
    make_gridder,
    available_gridders,
)
from repro.kernels import KernelLUT, beatty_kernel
from tests.conftest import random_samples


class TestNaive:
    def test_loop_equals_vectorized(self, small_setup, rng):
        coords, vals = random_samples(rng, 30, small_setup.grid_shape)
        loop = NaiveGridder(small_setup, engine="loop").grid(coords, vals)
        vec = NaiveGridder(small_setup, engine="vectorized").grid(coords, vals)
        np.testing.assert_allclose(loop, vec, rtol=1e-12, atol=1e-12)

    def test_rejects_unknown_engine(self, small_setup):
        with pytest.raises(ValueError, match="engine"):
            NaiveGridder(small_setup, engine="gpu")

    def test_stats(self, small_setup, rng):
        coords, vals = random_samples(rng, 25, small_setup.grid_shape)
        g = NaiveGridder(small_setup)
        g.grid(coords, vals)
        assert g.stats.boundary_checks == 25 * 36
        assert g.stats.interpolations == 25 * 36
        assert g.stats.samples_processed == 25
        assert g.stats.presort_operations == 0

    def test_empty_input(self, small_setup):
        g = NaiveGridder(small_setup)
        out = g.grid(np.zeros((0, 2)), np.zeros(0, dtype=complex))
        assert np.all(out == 0)

    def test_value_count_mismatch(self, small_setup):
        with pytest.raises(ValueError, match="values"):
            NaiveGridder(small_setup).grid(np.zeros((3, 2)), np.zeros(2, dtype=complex))

    def test_linearity(self, small_setup, rng):
        coords, vals = random_samples(rng, 20, small_setup.grid_shape)
        g = NaiveGridder(small_setup)
        a = g.grid(coords, vals)
        b = g.grid(coords, 2.5 * vals)
        np.testing.assert_allclose(b, 2.5 * a, rtol=1e-12)

    def test_mass_conservation(self, small_setup):
        """Total gridded mass equals value x sum of kernel weights."""
        coords = np.asarray([[13.3, 7.9]])
        g = NaiveGridder(small_setup)
        out = g.grid(coords, np.asarray([1.0 + 0j]))
        from repro.gridding import window_contributions

        _, wgt = window_contributions(small_setup, coords)
        assert out.sum() == pytest.approx(wgt.sum(), rel=1e-12)


class TestOutputParallel:
    def test_check_count_is_m_times_grid(self, tiny_setup, rng):
        coords, vals = random_samples(rng, 10, tiny_setup.grid_shape)
        g = OutputParallelGridder(tiny_setup)
        g.grid(coords, vals)
        assert g.stats.boundary_checks == 10 * 256

    def test_interpolations_match_naive(self, tiny_setup, rng):
        coords, vals = random_samples(rng, 10, tiny_setup.grid_shape)
        g = OutputParallelGridder(tiny_setup)
        g.grid(coords, vals)
        assert g.stats.interpolations == 10 * 16

    def test_refuses_huge_problems(self):
        lut = KernelLUT(beatty_kernel(6, 2.0), 32)
        setup = GriddingSetup((2048, 2048), lut)
        g = OutputParallelGridder(setup)
        with pytest.raises(ValueError, match="boundary"):
            g.grid(np.zeros((1000, 2)), np.zeros(1000, dtype=complex))


class TestBinning:
    def test_rejects_tile_smaller_than_window(self, small_setup):
        with pytest.raises(ValueError, match="smaller than window"):
            BinningGridder(small_setup, tile_size=4)

    def test_rejects_non_dividing_tile(self, small_setup):
        with pytest.raises(ValueError, match="divide"):
            BinningGridder(small_setup, tile_size=7)

    def test_tile_count(self, small_setup):
        g = BinningGridder(small_setup, tile_size=8)
        assert g.n_tiles == 16
        assert g.tiles_per_axis == (4, 4)

    def test_duplicates_counted(self, small_setup):
        """A sample whose window straddles a tile boundary lands in two
        bins per straddled axis."""
        g = BinningGridder(small_setup, tile_size=8)
        # straddles the x = 8 tile edge only
        frac = g.duplicate_fraction(np.asarray([[8.0, 4.0]]))
        assert frac == pytest.approx(1.0)
        # straddles both axes: 4 bins
        frac = g.duplicate_fraction(np.asarray([[8.0, 8.0]]))
        assert frac == pytest.approx(3.0)
        # interior: 1 bin
        frac = g.duplicate_fraction(np.asarray([[4.0, 4.0]]))
        assert frac == pytest.approx(0.0)

    def test_presort_nonzero(self, small_setup, rng):
        coords, vals = random_samples(rng, 40, small_setup.grid_shape)
        g = BinningGridder(small_setup, tile_size=8)
        g.grid(coords, vals)
        assert g.stats.presort_operations > 0

    def test_processed_includes_duplicates(self, small_setup, rng):
        coords, vals = random_samples(rng, 64, small_setup.grid_shape)
        g = BinningGridder(small_setup, tile_size=8)
        g.grid(coords, vals)
        assert g.stats.samples_processed >= 64

    def test_interpolations_exact(self, small_setup, rng):
        coords, vals = random_samples(rng, 64, small_setup.grid_shape)
        g = BinningGridder(small_setup, tile_size=8)
        g.grid(coords, vals)
        assert g.stats.interpolations == 64 * 36

    def test_boundary_checks_are_bin_times_tile(self, small_setup, rng):
        coords, vals = random_samples(rng, 30, small_setup.grid_shape)
        g = BinningGridder(small_setup, tile_size=8)
        g.grid(coords, vals)
        assert g.stats.boundary_checks == g.stats.samples_processed * 64

    def test_wrap_assignment(self, small_setup):
        """A sample near the grid origin must land in bins of the first
        and last tiles (torus)."""
        g = BinningGridder(small_setup, tile_size=8)
        tiles, samples, _ = g.assign_bins(np.asarray([[0.5, 0.5]]))
        assert len(tiles) == 4  # wraps in both axes
        assert 0 in tiles  # tile (0, 0)
        assert 15 in tiles  # tile (3, 3)

    def test_chunking_invariance(self, small_setup, rng, monkeypatch):
        import repro.gridding.binning as binning

        coords, vals = random_samples(rng, 60, small_setup.grid_shape)
        full = BinningGridder(small_setup, tile_size=8).grid(coords, vals)
        monkeypatch.setattr(binning, "_CHUNK", 3)
        small = BinningGridder(small_setup, tile_size=8).grid(coords, vals)
        np.testing.assert_allclose(full, small, rtol=1e-12)


class TestRegistry:
    def test_available(self):
        names = available_gridders()
        assert set(names) >= {"naive", "output_parallel", "binning", "slice_and_dice"}

    def test_make_unknown(self, small_setup):
        with pytest.raises(ValueError, match="unknown gridder"):
            make_gridder("fancy", small_setup)

    @pytest.mark.parametrize("name", ["naive", "binning", "slice_and_dice"])
    def test_make_each(self, small_setup, name):
        g = make_gridder(name, small_setup)
        assert g.name == name

    def test_make_with_options(self, small_setup):
        g = make_gridder("binning", small_setup, tile_size=16)
        assert g.tile_size == 16
