"""Tests for the multicore column-sharded Slice-and-Dice engine.

The contract under test (ISSUE: the tentpole invariant) is that
``slice_and_dice_parallel`` is **bit-identical** — ``np.array_equal``,
not allclose — to the serial ``slice_and_dice`` engine on every public
entry point, for every backend of the degradation ladder, while never
leaking shared-memory segments and while reporting its shard schedule
in ``GriddingStats``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import ParallelSliceAndDiceGridder, SliceAndDiceGridder, shard_plan
from repro.core import parallel as parallel_mod
from repro.gridding import GriddingSetup, make_gridder
from repro.kernels import KernelLUT, beatty_kernel
from tests.conftest import random_samples

needs_processes = pytest.mark.skipif(
    not parallel_mod._processes_available(),
    reason="fork + shared_memory not available on this platform",
)

BACKENDS = ["thread"] + (["process"] if parallel_mod._processes_available() else [])

#: force the pool even on tiny test problems
FORCE = {"min_parallel_ops": 0}


def build_setup(shape, w=4, lut_l=32) -> GriddingSetup:
    return GriddingSetup(tuple(shape), KernelLUT(beatty_kernel(w, 2.0), lut_l))


def make_pair(setup, **kw):
    """(serial, parallel) gridders sharing one problem setup."""
    tile = kw.pop("tile_size", 8)
    serial = SliceAndDiceGridder(setup, tile_size=tile)
    par = ParallelSliceAndDiceGridder(setup, tile_size=tile, **FORCE, **kw)
    return serial, par


class TestShardPlan:
    def test_covers_range_contiguously(self):
        for n_items in (1, 2, 7, 64, 1000):
            for n_shards in (1, 2, 3, 8, 2000):
                plan = shard_plan(n_items, n_shards)
                assert plan[0][0] == 0
                assert plan[-1][1] == n_items
                for (_, hi), (lo2, _) in zip(plan, plan[1:]):
                    assert hi == lo2
                assert all(lo < hi for lo, hi in plan)

    def test_capped_by_items(self):
        assert len(shard_plan(3, 8)) == 3
        assert shard_plan(3, 8) == ((0, 1), (1, 2), (2, 3))

    def test_empty(self):
        assert shard_plan(0, 4) == ()

    def test_near_equal_slabs(self):
        sizes = [hi - lo for lo, hi in shard_plan(100, 7)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 100


@pytest.mark.parametrize("backend", BACKENDS)
class TestBitIdentity:
    """np.array_equal against the serial engine — not merely allclose."""

    @pytest.mark.parametrize("shape", [(32, 32), (16, 16, 16)])
    def test_grid(self, backend, shape, rng):
        setup = build_setup(shape)
        serial, par = make_pair(setup, workers=3, backend=backend)
        coords, vals = random_samples(rng, 200, shape)
        ref = serial.grid(coords, vals)
        out = par.grid(coords, vals)
        assert np.array_equal(out, ref)
        assert par.stats.parallel_backend == backend

    @pytest.mark.parametrize("k_rhs", [1, 2, 5])
    def test_grid_batch(self, backend, k_rhs, rng):
        shape = (32, 32)
        setup = build_setup(shape)
        serial, par = make_pair(setup, workers=2, backend=backend)
        coords, _ = random_samples(rng, 150, shape)
        stack = rng.standard_normal((k_rhs, 150)) + 1j * rng.standard_normal(
            (k_rhs, 150)
        )
        ref = serial.grid_batch(coords, stack)
        out = par.grid_batch(coords, stack)
        assert np.array_equal(out, ref)

    @pytest.mark.parametrize("shape", [(32, 32), (16, 16, 16)])
    def test_interp(self, backend, shape, rng):
        setup = build_setup(shape)
        serial, par = make_pair(setup, workers=3, backend=backend)
        coords, _ = random_samples(rng, 200, shape)
        grid = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        ref = serial.interp(grid, coords)
        out = par.interp(grid, coords)
        assert np.array_equal(out, ref)

    @pytest.mark.parametrize("k_rhs", [1, 3])
    def test_interp_batch(self, backend, k_rhs, rng):
        shape = (32, 32)
        setup = build_setup(shape)
        serial, par = make_pair(setup, workers=2, backend=backend)
        coords, _ = random_samples(rng, 120, shape)
        stack = rng.standard_normal((k_rhs,) + shape) + 1j * rng.standard_normal(
            (k_rhs,) + shape
        )
        ref = serial.interp_batch(stack, coords)
        out = par.interp_batch(stack, coords)
        assert np.array_equal(out, ref)

    def test_single_sample(self, backend, rng):
        """M=1 still shards (columns are the sharded axis for gridding)."""
        setup = build_setup((32, 32))
        serial, par = make_pair(setup, workers=4, backend=backend)
        coords = np.asarray([[7.3, 21.9]])
        vals = np.asarray([1.0 - 2.0j])
        assert np.array_equal(par.grid(coords, vals), serial.grid(coords, vals))


class TestWorkerResolution:
    def test_workers_capped_by_columns(self, rng):
        """More workers than T^d columns → pool capped at column count."""
        setup = build_setup((16, 16))
        serial, par = make_pair(setup, workers=500, backend="thread")
        coords, vals = random_samples(rng, 50, (16, 16))
        out = par.grid(coords, vals)
        n_columns = par.layout.n_columns
        assert par.stats.workers_used == n_columns
        assert len(par.stats.shard_plan) == n_columns
        assert np.array_equal(out, serial.grid(coords, vals))

    def test_workers_one_is_serial(self, rng):
        setup = build_setup((16, 16))
        _, par = make_pair(setup, workers=1, backend="auto")
        coords, vals = random_samples(rng, 50, (16, 16))
        par.grid(coords, vals)
        assert par.stats.parallel_backend == "serial"
        assert par.stats.workers_used == 1

    def test_auto_on_single_core_is_serial(self, rng, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        setup = build_setup((16, 16))
        _, par = make_pair(setup, workers="auto", backend="auto")
        coords, vals = random_samples(rng, 50, (16, 16))
        par.grid(coords, vals)
        assert par.stats.parallel_backend == "serial"

    def test_auto_on_multicore_uses_pool(self, rng, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        setup = build_setup((16, 16))
        serial, par = make_pair(setup, workers="auto", backend="thread")
        coords, vals = random_samples(rng, 50, (16, 16))
        out = par.grid(coords, vals)
        assert par.stats.workers_used == 4
        assert par.stats.parallel_backend == "thread"
        assert np.array_equal(out, serial.grid(coords, vals))

    def test_tiny_problem_falls_back_to_serial(self, rng):
        """Below min_parallel_ops boundary checks the pool is skipped."""
        setup = build_setup((16, 16))
        par = ParallelSliceAndDiceGridder(
            setup, workers=2, backend="thread", min_parallel_ops=1 << 30
        )
        coords, vals = random_samples(rng, 10, (16, 16))
        par.grid(coords, vals)
        assert par.stats.parallel_backend == "serial"

    def test_backend_serial_forces_serial(self, rng):
        setup = build_setup((16, 16))
        _, par = make_pair(setup, workers=4, backend="serial")
        coords, vals = random_samples(rng, 50, (16, 16))
        par.grid(coords, vals)
        assert par.stats.parallel_backend == "serial"

    def test_serial_fallback_is_bit_identical(self, rng):
        setup = build_setup((16, 16))
        serial = SliceAndDiceGridder(setup)
        _, par = make_pair(setup, workers=1)
        coords, vals = random_samples(rng, 50, (16, 16))
        assert np.array_equal(par.grid(coords, vals), serial.grid(coords, vals))
        grid = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
        assert np.array_equal(par.interp(grid, coords), serial.interp(grid, coords))


class TestValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelSliceAndDiceGridder(build_setup((16, 16)), workers=0)

    def test_rejects_bool_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelSliceAndDiceGridder(build_setup((16, 16)), workers=True)

    def test_rejects_string_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelSliceAndDiceGridder(build_setup((16, 16)), workers="many")

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelSliceAndDiceGridder(build_setup((16, 16)), backend="mpi")

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError, match="min_parallel_ops"):
            ParallelSliceAndDiceGridder(build_setup((16, 16)), min_parallel_ops=-1)

    def test_registry_construction(self):
        g = make_gridder("slice_and_dice_parallel", build_setup((16, 16)), workers=2)
        assert g.name == "slice_and_dice_parallel"
        assert isinstance(g, ParallelSliceAndDiceGridder)


def _shm_entries():
    """Names currently present in /dev/shm (POSIX shared memory)."""
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # pragma: no cover - platform without /dev/shm
        return None


@needs_processes
class TestSharedMemoryHygiene:
    def test_no_segments_leaked_on_success(self, rng):
        setup = build_setup((32, 32))
        _, par = make_pair(setup, workers=2, backend="process")
        coords, vals = random_samples(rng, 100, (32, 32))
        before = _shm_entries()
        par.grid(coords, vals)
        after = _shm_entries()
        if before is not None:
            assert after - before == set()

    def test_cleanup_when_spawn_fails(self, rng, monkeypatch):
        """A failure before the workers even start must unlink both
        segments (the allocation happens first)."""
        setup = build_setup((32, 32))
        _, par = make_pair(setup, workers=2, backend="process")
        coords, vals = random_samples(rng, 100, (32, 32))

        def boom(*args, **kwargs):
            raise OSError("fork failed")

        monkeypatch.setattr(par, "_spawn_workers", boom)
        before = _shm_entries()
        with pytest.raises(OSError, match="fork failed"):
            par.grid(coords, vals)
        after = _shm_entries()
        if before is not None:
            assert after - before == set()
        assert parallel_mod._FORK_WORK is None

    def test_cleanup_when_worker_dies(self, rng, monkeypatch):
        """A deterministically-crashing work closure exhausts the whole
        process -> thread -> serial ladder, surfaces as EngineFailure
        (a RuntimeError subclass), and still leaves /dev/shm clean."""
        setup = build_setup((32, 32))
        _, par = make_pair(setup, workers=2, backend="process")
        coords, vals = random_samples(rng, 100, (32, 32))

        def crash(*args, **kwargs):
            raise RuntimeError("worker bug")

        # the work closure calls _process_stream; forked children inherit
        # the patched bound method and die nonzero on every rung, so the
        # supervisor runs out of fallbacks
        monkeypatch.setattr(par, "_process_stream", crash)
        from repro.errors import EngineFailure

        before = _shm_entries()
        with pytest.raises(EngineFailure, match="every rung"):
            par.grid(coords, vals)
        after = _shm_entries()
        if before is not None:
            assert after - before == set()
        assert parallel_mod._FORK_WORK is None

    def test_shared_memory_unavailable_degrades_to_threads(self, rng, monkeypatch):
        """backend='process' with no allocatable shared memory silently
        runs the thread pool instead (and says so in stats)."""
        setup = build_setup((32, 32))
        serial, par = make_pair(setup, workers=2, backend="process")
        coords, vals = random_samples(rng, 100, (32, 32))

        def no_shm(self, *args, **kwargs):
            raise parallel_mod._SharedMemoryUnavailable("/dev/shm full")

        monkeypatch.setattr(
            ParallelSliceAndDiceGridder, "_run_processes", no_shm
        )
        out = par.grid(coords, vals)
        assert par.stats.parallel_backend == "thread"
        assert np.array_equal(out, serial.grid(coords, vals))


@pytest.mark.parametrize("backend", BACKENDS)
class TestStatsReporting:
    def test_shard_plan_covers_columns(self, backend, rng):
        setup = build_setup((32, 32))
        _, par = make_pair(setup, workers=3, backend=backend)
        coords, vals = random_samples(rng, 100, (32, 32))
        par.grid(coords, vals)
        plan = par.stats.shard_plan
        assert plan[0][0] == 0
        assert plan[-1][1] == par.layout.n_columns
        for (_, hi), (lo2, _) in zip(plan, plan[1:]):
            assert hi == lo2
        assert par.stats.workers_used == len(plan) == 3
        assert len(par.stats.worker_seconds) == 3
        assert all(s >= 0.0 for s in par.stats.worker_seconds)

    def test_interp_shard_plan_covers_samples(self, backend, rng):
        setup = build_setup((32, 32))
        _, par = make_pair(setup, workers=2, backend=backend)
        coords, _ = random_samples(rng, 101, (32, 32))
        grid = rng.standard_normal((32, 32)) + 1j * rng.standard_normal((32, 32))
        par.interp(grid, coords)
        plan = par.stats.shard_plan
        assert plan[0][0] == 0
        assert plan[-1][1] == 101  # samples, not columns
        assert par.stats.workers_used == 2

    def test_counters_match_serial(self, backend, rng):
        """Model counters (boundary checks, interpolations, ...) must
        not depend on the schedule."""
        setup = build_setup((32, 32))
        serial, par = make_pair(setup, workers=2, backend=backend)
        coords, vals = random_samples(rng, 100, (32, 32))
        serial.grid(coords, vals)
        par.grid(coords, vals)
        ref = serial.stats.as_dict()
        got = par.stats.as_dict()
        for key in (
            "boundary_checks",
            "interpolations",
            "samples_processed",
            "presort_operations",
            "grid_accesses",
            "lut_lookups",
        ):
            assert got[key] == ref[key], key

    def test_as_dict_carries_schedule(self, backend, rng):
        setup = build_setup((32, 32))
        _, par = make_pair(setup, workers=2, backend=backend)
        coords, vals = random_samples(rng, 100, (32, 32))
        par.grid(coords, vals)
        d = par.stats.as_dict()
        assert d["parallel_backend"] == backend
        assert d["workers_used"] == 2
        assert len(d["shard_plan"]) == 2


class TestTableCacheInteraction:
    def test_cache_hit_on_repeat_trajectory(self, rng):
        setup = build_setup((32, 32))
        _, par = make_pair(setup, workers=2, backend="thread")
        coords, vals = random_samples(rng, 100, (32, 32))
        par.grid(coords, vals)
        assert par.stats.cache_misses == 1
        par.grid(coords, vals)
        assert par.stats.cache_hits == 1
        assert par.stats.cache_misses == 0

    def test_serial_fallback_counts_one_cache_event(self, rng):
        """The fallback path must not prefetch-then-refetch tables
        (which would record a bogus hit on a cold cache)."""
        setup = build_setup((32, 32))
        par = ParallelSliceAndDiceGridder(
            setup, workers=2, backend="thread", min_parallel_ops=1 << 30
        )
        coords, vals = random_samples(rng, 100, (32, 32))
        par.grid(coords, vals)
        assert par.stats.cache_misses == 1
        assert par.stats.cache_hits == 0


class TestEndToEnd:
    """The engine plumbed through plan / SENSE / CG is still bit-exact."""

    OPTS = {"workers": 2, "backend": "thread", "min_parallel_ops": 0}

    def _plans(self, rng):
        from repro.nufft import NufftPlan
        from repro.trajectories import radial_trajectory

        coords = radial_trajectory(12, 24)
        serial = NufftPlan((16, 16), coords, gridder="slice_and_dice")
        par = NufftPlan(
            (16, 16),
            coords,
            gridder="slice_and_dice_parallel",
            gridder_options=dict(self.OPTS),
        )
        return serial, par

    def test_nufft_plan_round_trip(self, rng):
        serial, par = self._plans(rng)
        img = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
        assert np.array_equal(par.forward(img), serial.forward(img))
        y = rng.standard_normal(serial.n_samples) + 1j * rng.standard_normal(
            serial.n_samples
        )
        assert np.array_equal(par.adjoint(y), serial.adjoint(y))

    def test_sense_operator(self, rng):
        from repro.mri import SenseOperator, birdcage_maps

        serial, par = self._plans(rng)
        maps = birdcage_maps(3, 16)
        img = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
        op_s = SenseOperator(serial, maps)
        op_p = SenseOperator(par, maps)
        y_s = op_s.forward(img)
        y_p = op_p.forward(img)
        assert np.array_equal(y_p, y_s)
        assert np.array_equal(op_p.adjoint(y_p), op_s.adjoint(y_s))

    def test_cg_reconstruction_identical_iterates(self, rng):
        from repro.recon import cg_reconstruction

        serial, par = self._plans(rng)
        y = rng.standard_normal(serial.n_samples) + 1j * rng.standard_normal(
            serial.n_samples
        )
        res_s = cg_reconstruction(serial, y, n_iterations=5)
        res_p = cg_reconstruction(par, y, n_iterations=5)
        assert np.array_equal(res_p.image, res_s.image)
        assert res_p.residual_norms == res_s.residual_norms
