"""Unit tests for the sparse-matrix gridder (MIRT's matrix mode)."""

import numpy as np
import pytest

from repro.gridding import (
    GriddingSetup,
    NaiveGridder,
    SparseMatrixGridder,
    make_gridder,
)
from repro.kernels import KernelLUT, beatty_kernel
from tests.conftest import random_samples


class TestCorrectness:
    def test_matches_naive(self, small_setup, rng):
        coords, vals = random_samples(rng, 200, small_setup.grid_shape)
        ref = NaiveGridder(small_setup).grid(coords, vals)
        out = SparseMatrixGridder(small_setup).grid(coords, vals)
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-12)

    def test_interp_matches_base(self, small_setup, rng):
        coords, vals = random_samples(rng, 100, small_setup.grid_shape)
        grid = rng.standard_normal(small_setup.grid_shape) + 1j * rng.standard_normal(
            small_setup.grid_shape
        )
        ref = NaiveGridder(small_setup).interp(grid, coords)
        out = SparseMatrixGridder(small_setup).interp(grid, coords)
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-12)

    def test_adjoint_pair_exact(self, small_setup, rng):
        coords, vals = random_samples(rng, 80, small_setup.grid_shape)
        g = SparseMatrixGridder(small_setup)
        x = rng.standard_normal(small_setup.grid_shape) + 1j * rng.standard_normal(
            small_setup.grid_shape
        )
        lhs = np.vdot(x, g.grid(coords, vals))
        rhs = np.vdot(g.interp(x, coords), vals)
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_wrapping(self, small_setup):
        coords = np.asarray([[0.0, 0.0], [31.9, 31.9]])
        vals = np.ones(2, dtype=complex)
        ref = NaiveGridder(small_setup).grid(coords, vals)
        out = SparseMatrixGridder(small_setup).grid(coords, vals)
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-12)


class TestCaching:
    def test_matrix_reused_for_same_coords(self, small_setup, rng):
        coords, vals = random_samples(rng, 60, small_setup.grid_shape)
        g = SparseMatrixGridder(small_setup)
        g.grid(coords, vals)
        assert g.stats.presort_operations > 0  # built
        g.grid(coords, 2 * vals)
        assert g.stats.presort_operations == 0  # reused

    def test_matrix_rebuilt_for_new_coords(self, small_setup, rng):
        coords, vals = random_samples(rng, 60, small_setup.grid_shape)
        g = SparseMatrixGridder(small_setup)
        g.grid(coords, vals)
        coords2, _ = random_samples(rng, 60, small_setup.grid_shape)
        g.grid(coords2, vals)
        assert g.stats.presort_operations > 0

    def test_interp_uses_cached_matrix(self, small_setup, rng):
        coords, vals = random_samples(rng, 60, small_setup.grid_shape)
        g = SparseMatrixGridder(small_setup)
        g.grid(coords, vals)
        g.interp(np.zeros(small_setup.grid_shape, dtype=complex), coords)
        assert g.stats.presort_operations == 0

    def test_matrix_nbytes(self, small_setup, rng):
        g = SparseMatrixGridder(small_setup)
        assert g.matrix_nbytes == 0
        coords, vals = random_samples(rng, 60, small_setup.grid_shape)
        g.grid(coords, vals)
        # ~ M * W^2 * (8B data + 4B index) + indptr
        assert g.matrix_nbytes > 60 * 36 * 12 * 0.9


class TestStats:
    def test_no_boundary_checks(self, small_setup, rng):
        coords, vals = random_samples(rng, 50, small_setup.grid_shape)
        g = SparseMatrixGridder(small_setup)
        g.grid(coords, vals)
        assert g.stats.boundary_checks == 0
        assert g.stats.interpolations == pytest.approx(50 * 36, abs=36)

    def test_registered(self, small_setup):
        g = make_gridder("sparse_matrix", small_setup)
        assert isinstance(g, SparseMatrixGridder)


class TestMemoryGrowth:
    def test_footprint_grows_with_m(self, small_setup, rng):
        """The §II.A scaling point: matrix storage ~ M * W^d."""
        sizes = []
        for m in (100, 400):
            g = SparseMatrixGridder(small_setup)
            coords, vals = random_samples(rng, m, small_setup.grid_shape)
            g.grid(coords, vals)
            sizes.append(g.matrix_nbytes)
        assert sizes[1] == pytest.approx(4 * sizes[0], rel=0.1)
