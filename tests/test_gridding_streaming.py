"""Streaming chunked gridding: bit-identity, memory, chaos, service.

The contract under test (``repro.gridding.streaming``):

- chunked incremental accumulation is **bit-identical**
  (``np.array_equal``) to the one-shot compiled engine at complex128
  for *any* chunk size — non-dividing, ``chunk=1``, ``chunk >= M`` —
  in 2-D and 3-D, single and batched RHS, on every lane;
- ``SampleStream`` sources (arrays, memmap, generator chunks, raw
  files) all produce the same result, and the file source never holds
  more than one chunk resident;
- the reported ``peak_bytes`` is a true high-water mark
  (tracemalloc-cross-checked) and shrinks with the chunk size while
  the one-shot engine's does not;
- chaos: a corrupted mid-stream chunk aborts with no partial
  accumulation and a balanced buffer pool; a crashed pipelined
  prefetch worker demotes stickily to unpipelined with a recorded
  DegradationEvent and a still-bit-identical result.
"""

from __future__ import annotations

import os
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.jit import jit_available
from repro.errors import CoordinateError
from repro.gridding import (
    GridBufferPool,
    GriddingSetup,
    SampleStream,
    StreamingSliceAndDiceGridder,
    choose_chunk_samples,
    make_gridder,
)
from repro.kernels import KernelLUT, beatty_kernel
from repro.robustness import inject_faults
from tests.conftest import random_samples

CHUNK_SIZES = (1, 7, 100, 1000, 5000)  # 1, non-dividing, dividing, >= M
LANES = ("numpy", "serial") + (("jit",) if jit_available() else ())


def setup_3d() -> GriddingSetup:
    return GriddingSetup((16, 16, 16), KernelLUT(beatty_kernel(4, 2.0), 32))


# ----------------------------------------------------------------------
# bit-identity streamed vs one-shot (the tentpole's numerical contract)
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    @pytest.mark.parametrize("lane", LANES)
    def test_grid_2d(self, small_setup, rng, chunk, lane):
        coords, values = random_samples(rng, 400, small_setup.grid_shape)
        ref = make_gridder("slice_and_dice_compiled", small_setup)
        stm = make_gridder(
            "slice_and_dice_streaming", small_setup,
            chunk_samples=chunk, lane=lane,
        )
        assert np.array_equal(
            stm.grid(coords, values), ref.grid(coords, values)
        )
        # second pass hits the per-chunk plan cache — still identical
        assert np.array_equal(
            stm.grid(coords, values), ref.grid(coords, values)
        )

    @pytest.mark.parametrize("chunk", (1, 37, 500))
    def test_grid_3d(self, rng, chunk):
        setup = setup_3d()
        coords, values = random_samples(rng, 300, setup.grid_shape)
        ref = make_gridder("slice_and_dice_compiled", setup)
        stm = make_gridder(
            "slice_and_dice_streaming", setup, chunk_samples=chunk
        )
        assert np.array_equal(
            stm.grid(coords, values), ref.grid(coords, values)
        )

    @pytest.mark.parametrize("chunk", (13, 128))
    def test_grid_batch(self, small_setup, rng, chunk):
        coords, values = random_samples(rng, 300, small_setup.grid_shape)
        stack = np.stack([values, 2.0 * values - 1j, values[::-1]])
        ref = make_gridder("slice_and_dice_compiled", small_setup)
        stm = make_gridder(
            "slice_and_dice_streaming", small_setup, chunk_samples=chunk
        )
        assert np.array_equal(
            stm.grid_batch(coords, stack), ref.grid_batch(coords, stack)
        )

    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    @pytest.mark.parametrize("lane", LANES)
    def test_interp_2d(self, small_setup, rng, chunk, lane):
        coords, _ = random_samples(rng, 400, small_setup.grid_shape)
        grid = rng.standard_normal(small_setup.grid_shape) + 1j * (
            rng.standard_normal(small_setup.grid_shape)
        )
        ref = make_gridder("slice_and_dice_compiled", small_setup)
        stm = make_gridder(
            "slice_and_dice_streaming", small_setup,
            chunk_samples=chunk, lane=lane,
        )
        assert np.array_equal(
            stm.interp(grid, coords), ref.interp(grid, coords)
        )

    def test_interp_batch(self, small_setup, rng):
        coords, _ = random_samples(rng, 300, small_setup.grid_shape)
        grids = rng.standard_normal((2,) + small_setup.grid_shape) + 0j
        ref = make_gridder("slice_and_dice_compiled", small_setup)
        stm = make_gridder(
            "slice_and_dice_streaming", small_setup, chunk_samples=77
        )
        assert np.array_equal(
            stm.interp_batch(grids, coords), ref.interp_batch(grids, coords)
        )

    def test_pipelined_bit_identical(self, small_setup, rng):
        coords, values = random_samples(rng, 500, small_setup.grid_shape)
        ref = make_gridder("slice_and_dice_compiled", small_setup)
        stm = make_gridder(
            "slice_and_dice_streaming", small_setup,
            chunk_samples=64, pipelined=True,
        )
        assert np.array_equal(
            stm.grid(coords, values), ref.grid(coords, values)
        )
        assert stm.degradations == ()

    def test_complex64_numpy_lane_close(self, rng):
        """The numpy lane rounds the dice to float32 per chunk at
        complex64 (bincount accumulates in float64 internally), so it
        is allclose — the exact-chain guarantee is complex128-only."""
        setup = GriddingSetup(
            (32, 32), KernelLUT(beatty_kernel(6, 2.0), 64),
            dtype=np.complex64,
        )
        coords, values = random_samples(rng, 400, setup.grid_shape)
        ref = make_gridder("slice_and_dice_compiled", setup)
        stm = make_gridder(
            "slice_and_dice_streaming", setup, chunk_samples=64
        )
        np.testing.assert_allclose(
            stm.grid(coords, values), ref.grid(coords, values),
            rtol=1e-5, atol=1e-5,
        )

    @pytest.mark.skipif(not jit_available(), reason="requires numba")
    def test_complex64_jit_lane_bit_identical(self, rng):
        """The jit lane accumulates natively in the working dtype in
        entry order — bit-identical to the one-shot jit engine at
        *both* precisions."""
        setup = GriddingSetup(
            (32, 32), KernelLUT(beatty_kernel(6, 2.0), 64),
            dtype=np.complex64,
        )
        coords, values = random_samples(rng, 400, setup.grid_shape)
        ref = make_gridder("slice_and_dice_jit", setup, parallel_threshold=0)
        stm = make_gridder(
            "slice_and_dice_streaming", setup, chunk_samples=64, lane="jit"
        )
        assert np.array_equal(
            stm.grid(coords, values), ref.grid(coords, values)
        )


# ----------------------------------------------------------------------
# SampleStream sources
# ----------------------------------------------------------------------
class TestSampleStream:
    def test_from_arrays_chunking(self):
        coords = np.arange(10, dtype=np.float64).reshape(5, 2)
        values = np.ones(5, dtype=complex)
        s = SampleStream.from_arrays(coords, values, chunk_samples=2)
        sizes = [c.shape[0] for c, _ in s.chunks()]
        assert sizes == [2, 2, 1]
        assert s.m == 5
        # re-iterable
        assert [c.shape[0] for c, _ in s.chunks()] == sizes

    def test_from_arrays_memmap(self, small_setup, rng, tmp_path):
        coords, values = random_samples(rng, 333, small_setup.grid_shape)
        path = tmp_path / "coords.npy"
        np.save(path, coords)
        mm = np.load(path, mmap_mode="r")
        stm = make_gridder(
            "slice_and_dice_streaming", small_setup, chunk_samples=50
        )
        ref = make_gridder("slice_and_dice_compiled", small_setup)
        got = stm.grid_stream(SampleStream.from_arrays(mm, values, chunk_samples=50))
        assert np.array_equal(got, ref.grid(coords, values))

    def test_from_file_round_trip(self, small_setup, rng, tmp_path):
        coords, values = random_samples(rng, 451, small_setup.grid_shape)
        cp, vp = tmp_path / "c.f64", tmp_path / "v.c128"
        coords.tofile(cp)
        values.astype(np.complex128).tofile(vp)
        s = SampleStream.from_file(
            cp, m=451, ndim=2, values_path=vp, chunk_samples=100
        )
        stm = make_gridder(
            "slice_and_dice_streaming", small_setup, chunk_samples=100
        )
        ref = make_gridder("slice_and_dice_compiled", small_setup)
        assert np.array_equal(
            stm.grid_stream(s), ref.grid(coords, values)
        )
        # file streams are re-iterable
        assert np.array_equal(stm.grid_stream(s), ref.grid(coords, values))

    def test_from_chunks_generator_single_use(self, small_setup, rng):
        coords, values = random_samples(rng, 200, small_setup.grid_shape)

        def gen():
            for lo in range(0, 200, 61):
                yield coords[lo:lo + 61], values[lo:lo + 61]

        s = SampleStream.from_chunks(gen(), m=200)
        stm = make_gridder(
            "slice_and_dice_streaming", small_setup, chunk_samples=61
        )
        ref = make_gridder("slice_and_dice_compiled", small_setup)
        assert np.array_equal(stm.grid_stream(s), ref.grid(coords, values))
        with pytest.raises(RuntimeError, match="single-use"):
            stm.grid_stream(s)

    def test_batched_stream(self, small_setup, rng):
        coords, values = random_samples(rng, 150, small_setup.grid_shape)
        stack = np.stack([values, -values])
        stm = make_gridder(
            "slice_and_dice_streaming", small_setup, chunk_samples=40
        )
        ref = make_gridder("slice_and_dice_compiled", small_setup)
        got = stm.grid_stream(SampleStream.from_arrays(coords, stack, chunk_samples=40))
        assert got.shape == (2,) + small_setup.grid_shape
        assert np.array_equal(got, ref.grid_batch(coords, stack))

    def test_interp_stream_sample_order(self, small_setup, rng):
        coords, _ = random_samples(rng, 300, small_setup.grid_shape)
        grid = rng.standard_normal(small_setup.grid_shape) + 0j
        stm = make_gridder(
            "slice_and_dice_streaming", small_setup, chunk_samples=71
        )
        ref = make_gridder("slice_and_dice_compiled", small_setup)
        chunks = list(
            stm.interp_stream(
                grid, SampleStream.from_arrays(coords, chunk_samples=71)
            )
        )
        assert [c.shape[0] for c in chunks] == [71, 71, 71, 71, 16]
        assert np.array_equal(
            np.concatenate(chunks), ref.interp(grid, coords)
        )

    def test_empty_stream(self, small_setup):
        stm = make_gridder("slice_and_dice_streaming", small_setup)
        got = stm.grid_stream(
            SampleStream.from_arrays(
                np.zeros((0, 2)), np.zeros(0, dtype=complex)
            )
        )
        assert got.shape == small_setup.grid_shape and not got.any()
        assert stm.stats.chunks == 0

    def test_grid_stream_requires_values(self, small_setup, rng):
        coords, _ = random_samples(rng, 50, small_setup.grid_shape)
        stm = make_gridder("slice_and_dice_streaming", small_setup)
        with pytest.raises(ValueError, match="value chunks"):
            stm.grid_stream(SampleStream.from_arrays(coords, chunk_samples=10))

    def test_invalid_chunk_samples(self):
        with pytest.raises(ValueError, match="chunk_samples"):
            SampleStream.from_arrays(np.zeros((4, 2)), chunk_samples=0)


# ----------------------------------------------------------------------
# adjointness (property-based)
# ----------------------------------------------------------------------
class TestAdjointness:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        chunk=st.integers(1, 90),
    )
    def test_streamed_pair_is_adjoint(self, seed, chunk):
        """<grid(v), g> == <v, interp(g)> for the streamed operators."""
        setup = GriddingSetup((16, 16), KernelLUT(beatty_kernel(4, 2.0), 32))
        rng = np.random.default_rng(seed)
        coords, values = random_samples(rng, 80, setup.grid_shape)
        grid = rng.standard_normal(setup.grid_shape) + 1j * (
            rng.standard_normal(setup.grid_shape)
        )
        stm = make_gridder(
            "slice_and_dice_streaming", setup, chunk_samples=chunk
        )
        lhs = np.vdot(grid, stm.grid(coords, values))
        rhs = np.vdot(stm.interp(grid, coords), values)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-10, atol=1e-10)


# ----------------------------------------------------------------------
# memory accounting (satellite: true peak_bytes)
# ----------------------------------------------------------------------
class TestMemory:
    def test_stats_fields(self, small_setup, rng):
        coords, values = random_samples(rng, 500, small_setup.grid_shape)
        stm = make_gridder(
            "slice_and_dice_streaming", small_setup, chunk_samples=64
        )
        stm.grid(coords, values)
        st_ = stm.stats
        assert st_.chunks == int(np.ceil(500 / 64))
        assert st_.chunk_bytes > 0
        assert st_.peak_bytes > 0
        assert st_.samples_processed == 500

    def test_peak_bytes_shrinks_with_chunk(self, small_setup, rng):
        coords, values = random_samples(rng, 2000, small_setup.grid_shape)
        peaks = {}
        for chunk in (50, 2000):
            stm = make_gridder(
                "slice_and_dice_streaming", small_setup, chunk_samples=chunk
            )
            stm.grid(coords, values)
            peaks[chunk] = stm.stats.peak_bytes
        ref = make_gridder("slice_and_dice_compiled", small_setup)
        ref.grid(coords, values)
        assert peaks[50] < peaks[2000]
        assert peaks[50] < ref.stats.peak_bytes

    def test_one_shot_engines_report_peak_bytes(self, small_setup, rng):
        """Satellite: the one-shot engines' peak_bytes now includes the
        dice + plan + transient tables, not just the pooled buffer."""
        coords, values = random_samples(rng, 400, small_setup.grid_shape)
        for name in ("slice_and_dice", "slice_and_dice_compiled"):
            g = make_gridder(name, small_setup)
            g.grid(coords, values)
            n_flat_bytes = (
                int(np.prod(small_setup.grid_shape))
                * small_setup.dtype.itemsize
            )
            # at least the dice must be accounted for
            assert g.stats.peak_bytes >= n_flat_bytes

    def test_peak_bytes_tracks_tracemalloc(self, small_setup, rng):
        """The reported high water must bound the allocator's measured
        peak for the pass (same order of magnitude, never under by more
        than the fixed interpreter noise floor)."""
        coords, values = random_samples(rng, 3000, small_setup.grid_shape)
        # 3000 samples / 256-sample chunks = 12 chunk plans; the cache
        # must hold all of them or the "warm" pass still recompiles and
        # the allocator sees compile transients we do not account for
        stm = make_gridder(
            "slice_and_dice_streaming",
            small_setup,
            chunk_samples=256,
            plan_cache_size=16,
        )
        stm.grid(coords, values)  # warm the plan cache + scratch
        tracemalloc.start()
        tracemalloc.reset_peak()
        stm.grid(coords, values)
        _, traced_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # warm pass: plans cached, scratch persistent — the transient
        # peak the allocator sees must not exceed what we report plus
        # a small slack for interpreter internals
        assert traced_peak <= stm.stats.peak_bytes + 1_000_000, (
            traced_peak, stm.stats.peak_bytes
        )

    def test_choose_chunk_samples(self):
        # full fit -> one chunk
        assert choose_chunk_samples(1000, (64, 64), 4, max_bytes=None) == 1000
        # budget binds -> smaller chunk, at least 1
        c = choose_chunk_samples(10**8, (256, 256), 4, max_bytes=2**30)
        assert 1 <= c < 10**8
        # grid alone over budget -> error
        with pytest.raises(ValueError, match="max_bytes"):
            choose_chunk_samples(100, (1024, 1024), 4, max_bytes=1024)

    def test_choose_chunk_budget_respected(self, small_setup, rng):
        coords, values = random_samples(rng, 5000, small_setup.grid_shape)
        budget = 2_000_000
        chunk = choose_chunk_samples(
            5000, small_setup.grid_shape, 6, max_bytes=budget
        )
        stm = make_gridder(
            "slice_and_dice_streaming", small_setup, chunk_samples=chunk
        )
        stm.grid(coords, values)
        assert stm.stats.peak_bytes <= budget


# ----------------------------------------------------------------------
# registry + engine surface
# ----------------------------------------------------------------------
class TestRegistry:
    def test_registered(self, small_setup):
        from repro.gridding import available_gridders

        assert "slice_and_dice_streaming" in available_gridders()
        stm = make_gridder("slice_and_dice_streaming", small_setup)
        assert isinstance(stm, StreamingSliceAndDiceGridder)

    @pytest.mark.parametrize(
        "name,lane",
        [
            ("slice_and_dice", "serial"),
            ("slice_and_dice_compiled", "numpy"),
            ("slice_and_dice_parallel", "numpy"),
            ("slice_and_dice_jit", "auto"),
        ],
    )
    def test_chunk_samples_retargets(self, small_setup, name, lane):
        g = make_gridder(name, small_setup, chunk_samples=128)
        assert g.name == "slice_and_dice_streaming"
        assert g.requested_lane == lane
        assert g.chunk_samples == 128

    def test_bad_lane_rejected(self, small_setup):
        with pytest.raises(ValueError, match="lane"):
            StreamingSliceAndDiceGridder(small_setup, lane="cuda")

    def test_jit_lane_degrades_without_numba(self, small_setup, rng):
        if jit_available():
            pytest.skip("numba importable — degradation path not reachable")
        stm = StreamingSliceAndDiceGridder(small_setup, lane="jit")
        assert stm.degradations
        assert stm.degradations[0].from_stage == "jit"
        coords, values = random_samples(rng, 100, small_setup.grid_shape)
        ref = make_gridder("slice_and_dice_compiled", small_setup)
        assert np.array_equal(
            stm.grid(coords, values), ref.grid(coords, values)
        )

    def test_nufft_plan_reports_chunks(self, rng):
        from repro.nufft import NufftPlan

        coords = rng.uniform(-0.5, 0.5, (600, 2))
        values = rng.standard_normal(600) + 1j * rng.standard_normal(600)
        plan = NufftPlan(
            (16, 16), coords,
            gridder="slice_and_dice_compiled",
            gridder_options={"chunk_samples": 100},
        )
        plan.adjoint(values)
        assert plan.timings.chunks == 6
        one_shot = NufftPlan((16, 16), coords, gridder="slice_and_dice_compiled")
        one_shot.adjoint(values)
        assert one_shot.timings.chunks == 0


# ----------------------------------------------------------------------
# chaos: corrupted chunks and crashed prefetch workers
# ----------------------------------------------------------------------
class TestChaos:
    def test_corrupt_chunk_raise_aborts_cleanly(self, small_setup, rng):
        coords, values = random_samples(rng, 500, small_setup.grid_shape)
        pool = GridBufferPool()
        stm = make_gridder(
            "slice_and_dice_streaming", small_setup, chunk_samples=100
        )
        stm.buffer_pool = pool
        ref = make_gridder("slice_and_dice_compiled", small_setup)
        expected = ref.grid(coords, values)
        with inject_faults(seed=3, corrupt_chunk_index=2) as inj:
            with pytest.raises(CoordinateError):
                stm.grid_stream(
                    SampleStream.from_arrays(coords, values, chunk_samples=100)
                )
            assert any(site == "corrupt" for site, _ in inj.log)
        # no partial accumulation: pool balanced, next pass bit-identical
        assert pool.snapshot().outstanding == 0
        assert np.array_equal(
            stm.grid_stream(
                SampleStream.from_arrays(coords, values, chunk_samples=100)
            ),
            expected,
        )

    @pytest.mark.parametrize("policy", ("drop", "zero"))
    def test_corrupt_chunk_degrades_per_policy(self, rng, policy):
        setup = GriddingSetup(
            (32, 32), KernelLUT(beatty_kernel(6, 2.0), 64),
            quality_policy=policy,
        )
        coords, values = random_samples(rng, 500, setup.grid_shape)
        stm = make_gridder(
            "slice_and_dice_streaming", setup, chunk_samples=100
        )
        ref = make_gridder("slice_and_dice_compiled", setup)
        if policy == "drop":
            keep = np.ones(500, bool)
            keep[200:300] = False
            expected = ref.grid(coords[keep], values[keep])
        else:
            patched = values.copy()
            patched[200:300] = 0.0
            c_patched = coords.copy()
            c_patched[200:300] = 0.0
            expected = ref.grid(c_patched, patched)
        with inject_faults(seed=3, corrupt_chunk_index=2):
            got = stm.grid_stream(
                SampleStream.from_arrays(coords, values, chunk_samples=100)
            )
        assert np.array_equal(got, expected)
        assert stm.stats.quality is not None
        flagged = (
            stm.stats.quality.dropped
            if policy == "drop"
            else stm.stats.quality.zeroed
        )
        assert flagged == 100

    def test_pipelined_worker_crash_demotes_sticky(self, small_setup, rng):
        coords, values = random_samples(rng, 600, small_setup.grid_shape)
        pool = GridBufferPool()
        stm = make_gridder(
            "slice_and_dice_streaming", small_setup,
            chunk_samples=100, pipelined=True,
        )
        stm.buffer_pool = pool
        ref = make_gridder("slice_and_dice_compiled", small_setup)
        expected = ref.grid(coords, values)
        with inject_faults(seed=3, worker_crash=1) as inj:
            got = stm.grid(coords, values)
            assert any(site == "worker" for site, _ in inj.log)
        # result unharmed, demotion recorded and sticky
        assert np.array_equal(got, expected)
        events = [
            e for e in stm.degradations if e.from_stage == "pipelined"
        ]
        assert len(events) == 1
        assert events[0].component == "streaming"
        assert events[0].to_stage == "unpipelined"
        assert any(
            e.from_stage == "pipelined" for e in stm.stats.degradations
        )
        assert pool.snapshot().outstanding == 0
        # later passes stay unpipelined (no un-demotion) and correct
        assert np.array_equal(stm.grid(coords, values), expected)
        assert len(
            [e for e in stm.degradations if e.from_stage == "pipelined"]
        ) == 1


# ----------------------------------------------------------------------
# service integration (max_bytes budget)
# ----------------------------------------------------------------------
class TestService:
    def test_max_bytes_routes_to_streaming(self, rng):
        from repro.service import ReconService
        from repro.service.jobs import JobSpec

        coords = rng.uniform(-0.5, 0.5, (3000, 2))
        samples = rng.standard_normal(3000) + 1j * rng.standard_normal(3000)
        payload = {
            "image_shape": [32, 32],
            "coords": coords.tolist(),
            "samples": {
                "real": samples.real.tolist(),
                "imag": samples.imag.tolist(),
            },
            "method": "adjoint",
        }
        budget = 2_000_000
        with ReconService(workers=1) as svc:
            plain = svc.submit(JobSpec.from_payload(payload))
            svc.wait(plain.id, 60)
            assert plain.state == "done", plain.error
            budgeted = svc.submit(
                JobSpec.from_payload(
                    {**payload, "options": {"max_bytes": budget}}
                )
            )
            svc.wait(budgeted.id, 60)
            assert budgeted.state == "done", budgeted.error
            r_plain = plain.result
            r_budget = budgeted.result
            assert r_plain.chunks == 0
            assert r_budget.chunks > 1
            assert r_budget.peak_bytes <= budget
            assert np.array_equal(r_plain.image, r_budget.image)
            # surfaced in the JSON views
            assert r_budget.as_dict()["chunks"] == r_budget.chunks
            stats = svc.stats()
            assert stats["workers"][0]["jobs_chunked"] == 1

    def test_max_bytes_is_plan_shaped(self, rng):
        from repro.service.jobs import JobSpec

        coords = rng.uniform(-0.5, 0.5, (100, 2))
        samples = rng.standard_normal(100) + 0j
        a = JobSpec(
            image_shape=(16, 16), coords=coords, samples=samples,
        )
        b = JobSpec(
            image_shape=(16, 16), coords=coords, samples=samples,
            max_bytes=10**6,
        )
        assert a.plan_key() != b.plan_key()

    def test_unknown_option_still_rejected(self):
        from repro.service.jobs import JobSpec

        with pytest.raises(ValueError, match="unknown option"):
            JobSpec.from_payload(
                {
                    "image_shape": [8, 8],
                    "coords": [[0.0, 0.0]],
                    "samples": [1.0],
                    "options": {"max_bytez": 1},
                }
            )
