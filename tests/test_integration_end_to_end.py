"""Integration tests spanning multiple subsystems."""

import numpy as np
import pytest

from repro import (
    JigsawConfig,
    JigsawSimulator,
    NufftPlan,
    golden_angle_radial,
    liver_like_phantom,
    nrmsd_percent,
    shepp_logan_2d,
)
from repro.nudft import nudft_adjoint
from repro.recon import cg_reconstruction, rel_l2_error


class TestFullPipelineAllGridders:
    """Acquire -> reconstruct with every gridder backend; all must give
    the same image."""

    @pytest.fixture(scope="class")
    def acquisition(self):
        n = 32
        phantom = shepp_logan_2d(n).astype(complex)
        coords = golden_angle_radial(64, 64)
        ref_plan = NufftPlan((n, n), coords, gridder="naive")
        return n, phantom, coords, ref_plan.forward(phantom)

    @pytest.mark.parametrize("gridder", ["naive", "binning", "slice_and_dice"])
    def test_cg_recon_identical_across_gridders(self, acquisition, gridder):
        n, phantom, coords, kspace = acquisition
        plan = NufftPlan((n, n), coords, gridder=gridder)
        rec = cg_reconstruction(plan, kspace, n_iterations=8).image
        ref_plan = NufftPlan((n, n), coords, gridder="naive")
        ref = cg_reconstruction(ref_plan, kspace, n_iterations=8).image
        assert rel_l2_error(rec, ref) < 1e-8


class TestJigsawInTheLoop:
    """The hardware simulator as the NuFFT's gridding backend:
    reconstruct through the fixed-point datapath and compare with the
    double-precision pipeline — the Fig. 9 experiment in miniature."""

    def test_fixed_point_recon_close_to_double(self):
        n = 32
        g = 2 * n
        phantom = liver_like_phantom(n, rng=0).astype(complex)
        coords = golden_angle_radial(96, 96)
        ell = 32

        plan = NufftPlan(
            (n, n), coords, width=6, table_oversampling=ell, gridder="naive"
        )
        kspace = plan.forward(phantom)

        # double-precision adjoint recon
        ref_img = plan.adjoint(kspace)

        # fixed-point gridding via JIGSAW, then the same FFT + apod
        cfg = JigsawConfig(grid_dim=g, window_width=6, table_oversampling=ell)
        sim = JigsawSimulator(cfg)
        hw_grid = sim.grid_2d(plan.grid_coords, kspace).grid
        spectrum = np.fft.ifftn(hw_grid) * g * g
        hw_img = plan._apodize(plan._crop(spectrum))

        assert nrmsd_percent(hw_img, ref_img) < 0.2

    def test_hardware_beats_low_precision_table(self):
        """Fig. 9's qualitative claim: a coarse table (L=32) with
        16-bit fixed point reconstructs within a fraction of a percent
        of the L=1024-class double reference."""
        n = 24
        coords = golden_angle_radial(72, 72)
        phantom = shepp_logan_2d(n).astype(complex)
        fine = NufftPlan((n, n), coords, width=6, table_oversampling=1024,
                         gridder="naive")
        kspace = fine.forward(phantom)
        ref = fine.adjoint(kspace)

        cfg = JigsawConfig(grid_dim=2 * n, window_width=6, table_oversampling=32)
        sim = JigsawSimulator(cfg)
        coarse = NufftPlan((n, n), coords, width=6, table_oversampling=32,
                           gridder="naive")
        hw_grid = sim.grid_2d(coarse.grid_coords, kspace).grid
        spectrum = np.fft.ifftn(hw_grid) * (2 * n) ** 2
        hw_img = coarse._apodize(coarse._crop(spectrum))
        assert nrmsd_percent(hw_img, ref) < 1.0


class TestNufftMatchesNudftThroughRecon:
    def test_adjoint_chain(self):
        rng = np.random.default_rng(0)
        n = 16
        from repro.trajectories import random_trajectory

        coords = random_trajectory(300, 2, rng=1)
        vals = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        plan = NufftPlan((n, n), coords, table_oversampling=4096)
        fast = plan.adjoint(vals)
        exact = nudft_adjoint(vals, coords, (n, n))
        assert rel_l2_error(fast, exact) < 5e-4


class TestStatsSurviveThePlan:
    def test_gridder_stats_accessible_after_adjoint(self):
        coords = golden_angle_radial(16, 32)
        plan = NufftPlan((16, 16), coords, width=4)
        plan.adjoint(np.ones(coords.shape[0], dtype=complex))
        stats = plan.gridder.stats
        assert stats.samples_processed == coords.shape[0]
        assert stats.interpolations == coords.shape[0] * 16
