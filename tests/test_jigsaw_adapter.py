"""Unit tests for the JIGSAW NuFFT-backend adapter."""

import numpy as np
import pytest

from repro.gridding import GriddingSetup, NaiveGridder
from repro.jigsaw import JigsawConfig, JigsawGridder
from repro.kernels import KernelLUT, beatty_kernel
from repro.nufft import NufftPlan
from repro.trajectories import random_trajectory


@pytest.fixture
def setup():
    return GriddingSetup((64, 64), KernelLUT(beatty_kernel(6, 2.0), 32))


class TestAdapter:
    def test_matches_reference_gridding(self, setup, rng):
        coords = rng.uniform(0, 64, (400, 2))
        vals = rng.standard_normal(400) + 1j * rng.standard_normal(400)
        hw = JigsawGridder(setup).grid(coords, vals)
        ref = NaiveGridder(setup).grid(coords, vals)
        assert np.linalg.norm(hw - ref) / np.linalg.norm(ref) < 2e-3

    def test_stats_filled(self, setup, rng):
        coords = rng.uniform(0, 64, (100, 2))
        g = JigsawGridder(setup)
        g.grid(coords, np.ones(100, dtype=complex))
        assert g.stats.boundary_checks == 100 * 64
        assert g.stats.interpolations == 100 * 36
        assert g.stats.presort_operations == 0

    def test_cycles_and_energy(self, setup, rng):
        coords = rng.uniform(0, 64, (250, 2))
        g = JigsawGridder(setup)
        g.grid(coords, np.ones(250, dtype=complex))
        assert g.last_cycles == 262
        assert g.last_energy_joules > 0

    def test_cycles_before_run_raises(self, setup):
        g = JigsawGridder(setup)
        with pytest.raises(RuntimeError, match="no gridding pass"):
            g.last_cycles
        with pytest.raises(RuntimeError, match="no gridding pass"):
            g.last_energy_joules

    def test_rejects_non_square(self):
        setup = GriddingSetup((32, 64), KernelLUT(beatty_kernel(6, 2.0), 32))
        with pytest.raises(ValueError, match="square"):
            JigsawGridder(setup)

    def test_rejects_mismatched_config(self, setup):
        with pytest.raises(ValueError, match="grid_dim"):
            JigsawGridder(
                setup, JigsawConfig(grid_dim=128, window_width=6, table_oversampling=32)
            )
        with pytest.raises(ValueError, match="window"):
            JigsawGridder(
                setup, JigsawConfig(grid_dim=64, window_width=4, table_oversampling=32)
            )

    def test_for_problem_constructor(self):
        g = JigsawGridder.for_problem(64, KernelLUT(beatty_kernel(6, 2.0), 32))
        assert g.config.grid_dim == 64

    def test_interp_falls_back_to_software(self, setup, rng):
        coords = rng.uniform(0, 64, (50, 2))
        grid = rng.standard_normal((64, 64)) + 1j * rng.standard_normal((64, 64))
        hw = JigsawGridder(setup).interp(grid, coords)
        ref = NaiveGridder(setup).interp(grid, coords)
        np.testing.assert_allclose(hw, ref, rtol=1e-12)


class TestHardwareInTheLoopNufft:
    def test_full_plan(self, rng):
        from repro.nudft import nudft_adjoint

        coords = random_trajectory(300, 2, rng=3)
        setup = GriddingSetup((64, 64), KernelLUT(beatty_kernel(6, 2.0), 32))
        plan = NufftPlan(
            (32, 32), coords, width=6, table_oversampling=32,
            gridder=JigsawGridder(setup),
        )
        vals = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        img = plan.adjoint(vals)
        ref = nudft_adjoint(vals, coords, (32, 32))
        # L=32 coordinate quantization dominates (same as software at L=32)
        assert np.linalg.norm(img - ref) / np.linalg.norm(ref) < 0.05
