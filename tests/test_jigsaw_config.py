"""Unit tests for the JIGSAW configuration (Table I validation)."""

import pytest

from repro.jigsaw import JigsawConfig


class TestTableIRanges:
    @pytest.mark.parametrize("n", [8, 64, 256, 1024])
    def test_valid_grid_dims(self, n):
        assert JigsawConfig(grid_dim=n).grid_dim == n

    @pytest.mark.parametrize("n", [4, 2048])
    def test_invalid_grid_dims(self, n):
        with pytest.raises(ValueError, match="grid_dim"):
            JigsawConfig(grid_dim=n)

    @pytest.mark.parametrize("w", [1, 4, 6, 8])
    def test_valid_window(self, w):
        assert JigsawConfig(window_width=w).window_width == w

    @pytest.mark.parametrize("w", [0, 9])
    def test_invalid_window(self, w):
        with pytest.raises(ValueError, match="window_width"):
            JigsawConfig(window_width=w)

    @pytest.mark.parametrize("ell", [1, 2, 16, 64])
    def test_valid_table_oversampling(self, ell):
        assert JigsawConfig(table_oversampling=ell).table_oversampling == ell

    def test_table_oversampling_above_64(self):
        with pytest.raises(ValueError, match="table_oversampling"):
            JigsawConfig(table_oversampling=128)

    def test_table_oversampling_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            JigsawConfig(table_oversampling=24)

    def test_w_greater_than_t_rejected(self):
        with pytest.raises(ValueError, match="W <= T"):
            JigsawConfig(window_width=8, tile_dim=4)

    def test_grid_not_multiple_of_tile(self):
        with pytest.raises(ValueError, match="divide"):
            JigsawConfig(grid_dim=100)

    def test_weight_sram_capacity_enforced(self):
        """W=8 at L=64 exactly fills the 256-entry half-table; any
        config needing more must be rejected."""
        cfg = JigsawConfig(window_width=8, table_oversampling=64)
        assert cfg.half_table_entries == 257  # 256 stored + wired center
        with pytest.raises(ValueError, match="weight SRAM"):
            JigsawConfig(
                window_width=8, table_oversampling=64, weight_sram_entries=128
            )

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="variant"):
            JigsawConfig(variant="4d")


class TestDerivedProperties:
    def test_pipeline_count_is_t_squared(self):
        assert JigsawConfig(tile_dim=8).n_pipelines == 64

    def test_pipeline_depths(self):
        assert JigsawConfig(variant="2d").pipeline_depth == 12
        assert JigsawConfig(variant="3d_slice").pipeline_depth == 15

    def test_accumulator_sram_is_8mb_at_1024(self):
        cfg = JigsawConfig(grid_dim=1024)
        assert cfg.accumulator_sram_bytes == 8 * 1024 * 1024

    def test_tiles(self):
        cfg = JigsawConfig(grid_dim=64)
        assert cfg.tiles_per_axis == 8
        assert cfg.n_tiles == 64
        assert cfg.accumulator_words_per_pipeline == 64

    def test_frac_bits(self):
        assert JigsawConfig(table_oversampling=32).frac_bits == 5
        assert JigsawConfig(table_oversampling=1).frac_bits == 0

    def test_weight_sram_bytes(self):
        assert JigsawConfig().weight_sram_bytes == 1024

    def test_formats_are_16_16_32(self):
        cfg = JigsawConfig()
        assert cfg.weight_format.total_bits == 16
        assert cfg.value_format.total_bits == 16
        assert cfg.accumulator_format.total_bits == 32

    def test_3d_validation(self):
        with pytest.raises(ValueError, match="grid_dim_z"):
            JigsawConfig(variant="3d_slice", grid_dim_z=0)
        with pytest.raises(ValueError, match="window_width_z"):
            JigsawConfig(variant="3d_slice", window_width_z=9)

    def test_frozen(self):
        cfg = JigsawConfig()
        with pytest.raises(Exception):
            cfg.grid_dim = 512
