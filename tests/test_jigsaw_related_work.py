"""Unit tests for the related-work FPGA accelerator models (§VII.C)."""

import numpy as np
import pytest

from repro.jigsaw import (
    TiledAcceleratorModel,
    fifo_binning_cycles,
    jigsaw_reference_cycles,
    linked_list_binning_cycles,
)
from repro.trajectories import golden_angle_radial, random_trajectory


@pytest.fixture
def streams():
    g, m = 256, 2000
    ordered = np.mod(golden_angle_radial(m // 128, 128), 1.0)[:m] * g
    rng = np.random.default_rng(0)
    shuffled = ordered[rng.permutation(ordered.shape[0])]
    return g, ordered, shuffled


class TestTiledModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            TiledAcceleratorModel(tile_size=0)
        model = TiledAcceleratorModel()
        with pytest.raises(ValueError, match="divide"):
            model.run(np.zeros((1, 2)), 100)
        with pytest.raises(ValueError, match=r"\(M, 2\)"):
            model.run(np.zeros((1, 3)), 256)

    def test_single_tile_stream_no_extra_switches(self):
        """All samples in one interior tile: exactly one switch."""
        model = TiledAcceleratorModel()
        coords = np.full((50, 2), 48.0) + np.random.default_rng(1).uniform(
            0, 4, (50, 2)
        )
        stats = model.run(coords, 256)
        assert stats.tile_switches == 1

    def test_switch_cost_visible(self):
        """Alternating between far-apart tiles with a single buffer
        pays the switch penalty every sample."""
        model = TiledAcceleratorModel(n_open_tiles=1, tile_switch_cycles=64)
        a = [40.0, 40.0]
        b = [200.0, 200.0]
        coords = np.asarray([a, b] * 25)
        stats = model.run(coords, 256)
        assert stats.tile_switches == 50
        assert stats.cycles_per_sample > 60

    def test_more_buffers_fewer_switches(self, streams):
        g, _, shuffled = streams
        few = TiledAcceleratorModel(n_open_tiles=1).run(shuffled, g)
        many = TiledAcceleratorModel(n_open_tiles=16).run(shuffled, g)
        assert many.tile_switches < few.tile_switches


class TestPaperClaims:
    def test_pattern_dependence_of_fifo_binning(self, streams):
        """The §VII.C claim: FPGA binning runtime depends on the sample
        ordering; JIGSAW's does not."""
        g, ordered, shuffled = streams
        f_ord = fifo_binning_cycles(ordered, g)
        f_shuf = fifo_binning_cycles(shuffled, g)
        assert f_shuf.cycles > 2 * f_ord.cycles  # order sensitivity
        j_ord = jigsaw_reference_cycles(ordered.shape[0])
        j_shuf = jigsaw_reference_cycles(shuffled.shape[0])
        assert j_ord.cycles == j_shuf.cycles  # trajectory-agnostic

    def test_jigsaw_faster_than_both_fpga_models(self, streams):
        g, ordered, shuffled = streams
        for coords in (ordered, shuffled):
            j = jigsaw_reference_cycles(coords.shape[0])
            assert j.cycles < fifo_binning_cycles(coords, g).cycles
            assert j.cycles < linked_list_binning_cycles(coords, g).cycles

    def test_linked_list_less_order_sensitive_than_fifo(self, streams):
        """The presort pass decouples processing from arrival order."""
        g, ordered, shuffled = streams
        fifo_ratio = (
            fifo_binning_cycles(shuffled, g).cycles
            / fifo_binning_cycles(ordered, g).cycles
        )
        list_ratio = (
            linked_list_binning_cycles(shuffled, g).cycles
            / linked_list_binning_cycles(ordered, g).cycles
        )
        assert list_ratio < fifo_ratio

    def test_jigsaw_one_cycle_per_sample(self):
        stats = jigsaw_reference_cycles(100_000)
        assert stats.cycles_per_sample == pytest.approx(1.0, abs=1e-3)
