"""Unit tests for the JIGSAW bit-accurate functional simulator."""

import numpy as np
import pytest

from repro.gridding import GriddingSetup, NaiveGridder
from repro.jigsaw import JigsawConfig, JigsawSimulator
from repro.kernels import KernelLUT, beatty_kernel


def reference_grid(coords, vals, g, w, ell):
    setup = GriddingSetup((g, g), KernelLUT(beatty_kernel(w, 2.0), ell))
    return NaiveGridder(setup).grid(coords, vals)


@pytest.fixture
def cfg2d():
    return JigsawConfig(grid_dim=32, window_width=6, table_oversampling=32, variant="2d")


@pytest.fixture
def stream(rng):
    m = 300
    coords = rng.uniform(0, 32, (m, 2))
    vals = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    return coords, vals


class TestFunctional2D:
    def test_matches_double_reference(self, cfg2d, stream):
        coords, vals = stream
        res = JigsawSimulator(cfg2d).grid_2d(coords, vals)
        ref = reference_grid(coords, vals, 32, 6, 32)
        err = np.linalg.norm(res.grid - ref) / np.linalg.norm(ref)
        assert err < 2e-3  # 16-bit quantization floor

    def test_cycle_law(self, cfg2d, stream):
        coords, vals = stream
        res = JigsawSimulator(cfg2d).grid_2d(coords, vals)
        assert res.cycles == len(vals) + 12
        assert res.runtime_seconds == pytest.approx(res.cycles * 1e-9)

    def test_cycles_independent_of_pattern(self, cfg2d, rng):
        """The headline property: runtime depends only on M."""
        sim = JigsawSimulator(cfg2d)
        m = 200
        clustered = np.full((m, 2), 16.0) + rng.standard_normal((m, 2)) * 0.1
        scattered = rng.uniform(0, 32, (m, 2))
        vals = np.ones(m, dtype=complex)
        assert sim.grid_2d(clustered, vals).cycles == sim.grid_2d(scattered, vals).cycles

    def test_no_saturation_with_autoscale(self, cfg2d, stream):
        coords, vals = stream
        res = JigsawSimulator(cfg2d).grid_2d(coords, vals)
        assert res.saturation_events == 0

    def test_interpolation_count(self, cfg2d, stream):
        coords, vals = stream
        res = JigsawSimulator(cfg2d).grid_2d(coords, vals)
        assert res.interpolations == len(vals) * 36
        assert res.boundary_checks == len(vals) * 64

    def test_stream_order_invariance(self, cfg2d, stream):
        """Bit-exact invariance under input permutation: integer
        accumulation is associative and commutative."""
        coords, vals = stream
        sim = JigsawSimulator(cfg2d, value_scale=4.0)
        a = sim.grid_2d(coords, vals).grid
        perm = np.random.default_rng(0).permutation(len(vals))
        b = sim.grid_2d(coords[perm], vals[perm]).grid
        np.testing.assert_array_equal(a, b)

    def test_value_scale_roundtrip(self, cfg2d, stream):
        coords, vals = stream
        auto = JigsawSimulator(cfg2d).grid_2d(coords, vals).grid
        fixed = JigsawSimulator(cfg2d, value_scale=8.0).grid_2d(coords, vals).grid
        # same result up to quantization differences
        assert np.linalg.norm(auto - fixed) / np.linalg.norm(auto) < 5e-3

    def test_coordinate_quantization_to_l(self, cfg2d):
        """Coordinates are rounded to 1/L: two coords within 1/(2L)
        grid the same."""
        sim = JigsawSimulator(cfg2d, value_scale=1.0)
        v = np.asarray([0.5 + 0j])
        a = sim.grid_2d(np.asarray([[10.0, 10.0]]), v).grid
        b = sim.grid_2d(np.asarray([[10.0 + 1 / 128.0, 10.0]]), v).grid
        np.testing.assert_array_equal(a, b)

    def test_kernel_width_mismatch_rejected(self, cfg2d):
        with pytest.raises(ValueError, match="kernel width"):
            JigsawSimulator(cfg2d, kernel=beatty_kernel(4, 2.0))

    def test_wrong_variant_rejected(self):
        cfg = JigsawConfig(grid_dim=32, variant="3d_slice", table_oversampling=32)
        with pytest.raises(ValueError, match="2d"):
            JigsawSimulator(cfg).grid_2d(np.zeros((1, 2)), np.zeros(1, dtype=complex))

    def test_value_coordinate_count_mismatch(self, cfg2d):
        with pytest.raises(ValueError, match="values"):
            JigsawSimulator(cfg2d).grid_2d(np.zeros((2, 2)), np.zeros(3, dtype=complex))

    def test_saturation_detected_when_overdriven(self, cfg2d):
        """Thousands of coincident max-magnitude samples overflow the
        Q17.14 accumulator when scaling is disabled."""
        m = 70_000
        coords = np.full((m, 2), 16.0)
        vals = np.full(m, 100.0 + 0j)
        # deliberately under-scaled: each sample quantizes to ~2.0, so
        # 70k coincident hits exceed the Q17.14 ceiling of 2^17
        sim = JigsawSimulator(cfg2d, value_scale=50.0)
        res = sim.grid_2d(coords, vals)
        assert res.saturation_events > 0


class TestFunctional3D:
    @pytest.fixture
    def cfg3d(self):
        return JigsawConfig(
            grid_dim=16, grid_dim_z=4, window_width=4, window_width_z=4,
            table_oversampling=32, variant="3d_slice",
        )

    def test_matches_3d_reference(self, cfg3d, rng):
        m = 200
        coords = np.column_stack(
            [rng.uniform(0, 16, m), rng.uniform(0, 16, m), rng.uniform(0, 4, m)]
        )
        vals = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        res = JigsawSimulator(cfg3d).grid_3d_slice(coords, vals)
        setup = GriddingSetup((4, 16, 16), KernelLUT(beatty_kernel(4, 2.0), 32))
        ref = NaiveGridder(setup).grid(
            np.column_stack([coords[:, 2], coords[:, 0], coords[:, 1]]), vals
        )
        err = np.linalg.norm(res.grid - ref) / np.linalg.norm(ref)
        assert err < 2e-3

    def test_cycle_law_unsorted(self, cfg3d, rng):
        m = 100
        coords = rng.uniform(0, 4, (m, 3)) * np.asarray([4, 4, 1.0])
        vals = np.ones(m, dtype=complex)
        res = JigsawSimulator(cfg3d).grid_3d_slice(coords, vals)
        assert res.cycles == (m + 15) * 4

    def test_cycle_law_z_sorted(self, cfg3d, rng):
        m = 100
        coords = rng.uniform(0, 16, (m, 3)) * np.asarray([1, 1, 0.25])
        vals = np.ones(m, dtype=complex)
        res = JigsawSimulator(cfg3d).grid_3d_slice(coords, vals, z_sorted=True)
        assert res.cycles == (m + 15) * 4  # Wz = 4 here

    def test_output_shape(self, cfg3d):
        res = JigsawSimulator(cfg3d).grid_3d_slice(
            np.asarray([[8.0, 8.0, 2.0]]), np.asarray([1.0 + 0j])
        )
        assert res.grid.shape == (4, 16, 16)

    def test_wrong_variant_rejected(self, cfg2d=None):
        cfg = JigsawConfig(grid_dim=16, table_oversampling=32, window_width=4)
        with pytest.raises(ValueError, match="3d_slice"):
            JigsawSimulator(cfg).grid_3d_slice(
                np.zeros((1, 3)), np.zeros(1, dtype=complex)
            )
