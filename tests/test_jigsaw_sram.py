"""Unit tests for the SRAM macro model."""

import numpy as np
import pytest

from repro.jigsaw import SramModel


class TestConstruction:
    def test_capacity(self):
        s = SramModel(256, 32)
        assert s.bits == 8192
        assert s.bytes == 1024

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            SramModel(0, 32)
        with pytest.raises(ValueError):
            SramModel(16, 0)
        with pytest.raises(ValueError):
            SramModel(16, 8, ports=0)


class TestAccess:
    def test_load_then_read(self):
        s = SramModel(8, 16)
        s.load(np.arange(8))
        np.testing.assert_array_equal(s.read(np.arange(8)), np.arange(8))

    def test_load_clears_tail(self):
        s = SramModel(8, 16)
        s.load(np.full(8, 3))
        s.load(np.asarray([1, 2]))
        assert s.data[5] == 0

    def test_load_overflow_capacity(self):
        s = SramModel(4, 16)
        with pytest.raises(ValueError, match="exceed capacity"):
            s.load(np.arange(5))

    def test_load_overflow_word(self):
        s = SramModel(4, 8)
        with pytest.raises(OverflowError):
            s.load(np.asarray([300]))

    def test_write_then_read(self):
        s = SramModel(8, 16)
        s.write(np.asarray([3]), np.asarray([-5]))
        assert s.read(np.asarray([3]))[0] == -5

    def test_write_overflow(self):
        s = SramModel(8, 8)
        with pytest.raises(OverflowError):
            s.write(np.asarray([0]), np.asarray([200]))

    def test_address_range_checked(self):
        s = SramModel(8, 16)
        with pytest.raises(IndexError, match="address"):
            s.read(np.asarray([8]))
        with pytest.raises(IndexError, match="address"):
            s.write(np.asarray([-1]), np.asarray([0]))


class TestCounters:
    def test_counts_accumulate(self):
        s = SramModel(8, 16)
        s.read(np.arange(4))
        s.write(np.arange(2), np.zeros(2))
        assert s.reads == 4
        assert s.writes == 2

    def test_reset(self):
        s = SramModel(8, 16)
        s.read(np.arange(4))
        s.reset_counters()
        assert s.reads == 0 and s.writes == 0
