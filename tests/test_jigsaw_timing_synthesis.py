"""Unit tests for JIGSAW timing laws, DMA model, pipeline sim, synthesis."""

import numpy as np
import pytest

from repro.jigsaw import (
    DmaModel,
    JigsawConfig,
    PipelineTrace,
    gridding_cycles_2d,
    gridding_cycles_3d_slice,
    gridding_runtime_seconds,
    jigsaw_energy,
    simulate_microarchitecture,
    synthesize,
)
from repro.jigsaw.synthesis import TABLE_II


class TestCycleLaws:
    def test_2d(self):
        cfg = JigsawConfig()
        assert gridding_cycles_2d(1000, cfg) == 1012

    def test_2d_zero_samples(self):
        assert gridding_cycles_2d(0, JigsawConfig()) == 12

    def test_2d_negative_rejected(self):
        with pytest.raises(ValueError):
            gridding_cycles_2d(-1, JigsawConfig())

    def test_3d_unsorted(self):
        cfg = JigsawConfig(variant="3d_slice", grid_dim_z=64)
        assert gridding_cycles_3d_slice(1000, cfg) == (1000 + 15) * 64

    def test_3d_sorted(self):
        cfg = JigsawConfig(variant="3d_slice", grid_dim_z=64, window_width_z=6)
        assert gridding_cycles_3d_slice(1000, cfg, z_sorted=True) == (1000 + 15) * 6

    def test_runtime_at_1ghz(self):
        assert gridding_runtime_seconds(988, JigsawConfig()) == pytest.approx(1e-6)

    def test_runtime_3d_variant_dispatch(self):
        cfg = JigsawConfig(variant="3d_slice", grid_dim_z=4)
        assert gridding_runtime_seconds(10, cfg) == pytest.approx((10 + 15) * 4e-9)


class TestDma:
    def test_bus_bandwidth(self):
        dma = DmaModel(JigsawConfig())
        assert dma.bus_bandwidth_bytes_per_s == pytest.approx(16e9)

    def test_readout_two_points_per_cycle(self):
        dma = DmaModel(JigsawConfig(grid_dim=1024))
        assert dma.readout_cycles() == 1024 * 1024 // 2

    def test_readout_3d(self):
        dma = DmaModel(JigsawConfig(grid_dim=64, grid_dim_z=8, variant="3d_slice"))
        assert dma.readout_cycles() == 64 * 64 * 8 // 2

    def test_device_cycles(self):
        cfg = JigsawConfig(grid_dim=64)
        dma = DmaModel(cfg)
        assert dma.device_cycles(100) == 112 + 64 * 64 // 2

    def test_device_seconds(self):
        cfg = JigsawConfig(grid_dim=64)
        dma = DmaModel(cfg)
        assert dma.device_seconds(100) == pytest.approx(dma.device_cycles(100) * 1e-9)

    def test_input_cycles_validation(self):
        with pytest.raises(ValueError):
            DmaModel(JigsawConfig()).input_cycles(-5)


class TestMicroarchitecture:
    @pytest.mark.parametrize("m", [1, 10, 257])
    def test_total_cycles_equal_m_plus_depth_2d(self, m):
        trace = simulate_microarchitecture(JigsawConfig(), m)
        assert trace.total_cycles == m + 12

    def test_empty_stream_takes_no_cycles(self):
        """With nothing to push through, readout can start at once."""
        assert simulate_microarchitecture(JigsawConfig(), 0).total_cycles == 0

    @pytest.mark.parametrize("m", [1, 50])
    def test_total_cycles_3d(self, m):
        cfg = JigsawConfig(variant="3d_slice")
        trace = simulate_microarchitecture(cfg, m)
        assert trace.total_cycles == m + 15

    def test_never_stalls(self):
        trace = simulate_microarchitecture(JigsawConfig(), 500)
        assert trace.stalls == 0

    def test_full_occupancy_in_steady_state(self):
        trace = simulate_microarchitecture(JigsawConfig(), 10_000)
        for occ in trace.stage_occupancy:
            assert occ > 0.99

    def test_conflict_counting(self):
        addrs = np.zeros(100, dtype=np.int64)  # all hit the same address
        trace = simulate_microarchitecture(JigsawConfig(), 100, addrs)
        assert trace.accumulate_conflicts == 99

    def test_no_conflicts_distinct_addresses(self):
        addrs = np.arange(100)
        trace = simulate_microarchitecture(JigsawConfig(), 100, addrs)
        assert trace.accumulate_conflicts == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            simulate_microarchitecture(JigsawConfig(), -1)


class TestSynthesisTableII:
    @pytest.mark.parametrize(
        "variant,with_sram",
        [("2d", True), ("2d", False), ("3d_slice", True), ("3d_slice", False)],
    )
    def test_reproduces_table_ii(self, variant, with_sram):
        cfg = JigsawConfig(grid_dim=1024, variant=variant)
        rep = synthesize(cfg, with_accum_sram=with_sram)
        power_ref, area_ref = TABLE_II[(variant, with_sram)]
        assert rep.power_mw == pytest.approx(power_ref, rel=1e-6)
        assert rep.area_mm2 == pytest.approx(area_ref, rel=1e-6)

    def test_sram_dominates_area(self):
        """~95 % of area is the grid store (§VI.B)."""
        rep = synthesize(JigsawConfig(grid_dim=1024))
        assert rep.sram_area_mm2 / rep.area_mm2 > 0.94

    def test_area_scales_with_grid(self):
        small = synthesize(JigsawConfig(grid_dim=256))
        large = synthesize(JigsawConfig(grid_dim=1024))
        assert large.sram_area_mm2 == pytest.approx(16 * small.sram_area_mm2)

    def test_3d_lower_power_than_2d(self):
        p2 = synthesize(JigsawConfig(grid_dim=1024, variant="2d")).power_mw
        p3 = synthesize(JigsawConfig(grid_dim=1024, variant="3d_slice")).power_mw
        assert p3 < p2

    def test_power_w(self):
        rep = synthesize(JigsawConfig(grid_dim=1024))
        assert rep.power_w == pytest.approx(rep.power_mw * 1e-3)


class TestEnergy:
    def test_image1_energy_matches_fig8(self):
        """Fig. 8's 821 nJ for Image 1 (M = 3772) at the N=1024 build."""
        e = jigsaw_energy(3772, JigsawConfig(grid_dim=1024))
        assert e == pytest.approx(821e-9, rel=0.005)

    def test_fig8_average(self):
        ms = (3_772, 66_592, 1_574_654, 104_520, 184_660)
        cfg = JigsawConfig(grid_dim=1024)
        avg = np.mean([jigsaw_energy(m, cfg) for m in ms])
        assert avg == pytest.approx(83.89e-6, rel=0.005)

    def test_energy_linear_in_m(self):
        cfg = JigsawConfig(grid_dim=1024)
        e1 = jigsaw_energy(10_000, cfg)
        e2 = jigsaw_energy(20_000, cfg)
        assert e2 / e1 == pytest.approx(2.0, rel=1e-3)
