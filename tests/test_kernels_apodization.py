"""Unit tests for apodization (de-apodization) weights."""

import numpy as np
import pytest

from repro.kernels import (
    KernelLUT,
    apodization_weights,
    beatty_kernel,
    numeric_apodization,
)


@pytest.fixture
def kernel():
    return beatty_kernel(6, 2.0)


@pytest.fixture
def lut(kernel):
    return KernelLUT(kernel, 512)


class TestAnalytic:
    def test_shape(self, kernel):
        assert apodization_weights(kernel, 32, 64).shape == (32,)

    def test_symmetric_about_center(self, kernel):
        w = apodization_weights(kernel, 32, 64)
        np.testing.assert_allclose(w[16 + 5], w[16 - 5], rtol=1e-10)

    def test_center_is_minimum(self, kernel):
        """De-apodization grows away from the center (the kernel FT
        decays), so the center weight is the smallest."""
        w = apodization_weights(kernel, 32, 64)
        assert np.argmin(w) == 16

    def test_positive(self, kernel):
        assert np.all(apodization_weights(kernel, 48, 96) > 0)

    def test_rejects_bad_sizes(self, kernel):
        with pytest.raises(ValueError, match="grid_size >= n"):
            apodization_weights(kernel, 64, 32)

    def test_center_value_is_inverse_ft_at_zero(self, kernel):
        w = apodization_weights(kernel, 32, 64)
        assert w[16] == pytest.approx(1.0 / kernel.fourier(0.0), rel=1e-12)


class TestNumeric:
    def test_matches_analytic_within_aliasing(self, kernel, lut):
        """The DFT of the sampled kernel approximates the continuous FT
        (Poisson summation), so the two weight sets must agree closely
        at sigma=2."""
        n, g = 32, 64
        analytic = apodization_weights(kernel, n, g)
        numeric = numeric_apodization(lut, n, g)
        np.testing.assert_allclose(numeric, analytic, rtol=2e-3)

    def test_shape(self, lut):
        assert numeric_apodization(lut, 24, 48).shape == (24,)

    def test_rejects_window_wider_than_grid(self, kernel):
        lut = KernelLUT(kernel, 8)
        with pytest.raises(ValueError, match="smaller than window"):
            numeric_apodization(lut, 2, 4)

    def test_rejects_bad_sizes(self, lut):
        with pytest.raises(ValueError, match="grid_size >= n"):
            numeric_apodization(lut, 64, 32)

    def test_positive(self, lut):
        assert np.all(numeric_apodization(lut, 32, 64) > 0)

    def test_odd_image_size(self, lut):
        w = numeric_apodization(lut, 31, 64)
        assert w.shape == (31,)
        # centered layout: index 15 is the DC pixel
        assert np.argmin(w) == 15

    def test_cancels_lut_quantization(self, kernel):
        """Using the numeric weights, a coarse LUT must still make
        gridding+FFT exact for a DC-only dataset (sample at the k-space
        origin hits table points exactly)."""
        from repro.nufft import NufftPlan

        coarse = 16
        plan = NufftPlan(
            (16, 16),
            np.zeros((1, 2)),
            kernel=kernel,
            table_oversampling=coarse,
        )
        img = plan.adjoint(np.ones(1, dtype=complex))
        # adjoint of a unit DC sample is the all-ones image
        np.testing.assert_allclose(img, np.ones((16, 16)), rtol=1e-9)
