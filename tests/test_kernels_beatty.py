"""Unit tests for Beatty parameter selection."""

import math

import numpy as np
import pytest

from repro.kernels import beatty_beta, beatty_kernel, suggest_width
from repro.kernels.window import KaiserBesselKernel


class TestBeattyBeta:
    def test_reference_value_w6_sigma2(self):
        # direct evaluation of the published formula
        expected = math.pi * math.sqrt((6 / 2.0) ** 2 * (2.0 - 0.5) ** 2 - 0.8)
        assert beatty_beta(6, 2.0) == pytest.approx(expected)

    def test_wider_window_larger_beta(self):
        assert beatty_beta(8, 2.0) > beatty_beta(4, 2.0)

    def test_smaller_sigma_smaller_beta(self):
        assert beatty_beta(6, 1.25) < beatty_beta(6, 2.0)

    def test_rejects_sigma_leq_1(self):
        with pytest.raises(ValueError, match="exceed 1"):
            beatty_beta(6, 1.0)

    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError, match=">= 1"):
            beatty_beta(0.5, 2.0)

    def test_rejects_invalid_combination(self):
        # W=1 at sigma just above 1: radicand goes negative
        with pytest.raises(ValueError, match="too narrow"):
            beatty_beta(1, 1.05)


class TestSuggestWidth:
    def test_returns_even(self):
        for sigma in (1.25, 1.5, 2.0):
            assert suggest_width(sigma) % 2 == 0

    def test_smaller_sigma_needs_wider_window(self):
        assert suggest_width(1.25) >= suggest_width(2.0)

    def test_tighter_error_needs_wider_window(self):
        assert suggest_width(2.0, 1e-6) >= suggest_width(2.0, 1e-2)

    def test_clamped_range(self):
        assert 2 <= suggest_width(1.01, 1e-12) <= 16

    def test_rejects_bad_error(self):
        with pytest.raises(ValueError, match="target_error"):
            suggest_width(2.0, 1.5)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError, match="exceed 0.5"):
            suggest_width(0.4)


class TestBeattyKernel:
    def test_constructs_kb(self):
        k = beatty_kernel(6, 2.0)
        assert isinstance(k, KaiserBesselKernel)
        assert k.width == 6
        assert k.beta == pytest.approx(beatty_beta(6, 2.0))

    def test_beatty_beta_accuracy_sweep(self):
        """NuFFT error with the Beatty beta should beat clearly off
        values — the formula is supposed to be near-optimal."""
        from repro.nudft import nudft_adjoint
        from repro.nufft import NufftPlan
        from repro.trajectories import random_trajectory

        rng = np.random.default_rng(0)
        coords = random_trajectory(200, 2, rng=1)
        vals = rng.standard_normal(200) + 1j * rng.standard_normal(200)
        ref = nudft_adjoint(vals, coords, (16, 16))

        def err(beta: float) -> float:
            plan = NufftPlan(
                (16, 16),
                coords,
                kernel=KaiserBesselKernel(width=6, beta=beta),
                table_oversampling=4096,
            )
            out = plan.adjoint(vals)
            return float(np.linalg.norm(out - ref) / np.linalg.norm(ref))

        best = beatty_beta(6, 2.0)
        assert err(best) < err(best * 0.6)
        assert err(best) < err(best * 1.5)
