"""Exponential-of-semicircle window: properties, accuracy, adjointness.

The ES window phi(u) = exp(beta * (sqrt(1 - (2u/W)^2) - 1)) (Barnett
et al., the FINUFFT kernel) is cheaper to evaluate than Kaiser-Bessel
(one exp, no Bessel function) and matches its accuracy from W = 5 up.
This suite pins three claims the docs make:

- window-function contract (normalization, support, Fourier transform
  via the cached Gauss-Legendre quadrature);
- NuFFT accuracy vs the exact NuDFT across widths, 2D and 3D, both
  directions, including ES at W-1 staying within NRMSD <= 1e-3 of the
  KB baseline image;
- gridding with an ES LUT stays an exact adjoint pair (hypothesis).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import (
    ExponentialSemicircleKernel,
    KaiserBesselKernel,
    KernelLUT,
    es_beta,
    make_kernel,
)
from repro.gridding import GriddingSetup, make_gridder
from repro.nudft import nudft_adjoint, nudft_forward
from repro.nufft import NufftPlan, ToeplitzNormalOperator
from repro.trajectories import random_trajectory


def rel_err(a, b):
    return np.linalg.norm(a - b) / np.linalg.norm(b)


# ----------------------------------------------------------------------
# window-function contract
# ----------------------------------------------------------------------
class TestESWindow:
    @pytest.fixture
    def kernel(self):
        return ExponentialSemicircleKernel(width=6, beta=es_beta(6))

    def test_short_name_and_alias(self, kernel):
        assert kernel.short_name == "es"
        for name in ("es", "exp_semicircle"):
            k = make_kernel(name, 6)
            assert isinstance(k, ExponentialSemicircleKernel)
            assert k.beta == pytest.approx(es_beta(6))

    def test_explicit_beta_wins(self):
        assert make_kernel("es", 6, beta=9.5).beta == 9.5

    def test_sigma_shapes_beta(self):
        """Lower oversampling needs a narrower mainlobe (smaller beta)."""
        assert es_beta(6, sigma=1.25) < es_beta(6, sigma=2.0)
        k = make_kernel("es", 6, sigma=1.25)
        assert k.beta == pytest.approx(es_beta(6, 1.25))

    def test_peak_normalized(self, kernel):
        assert kernel.is_normalized()
        assert kernel(0.0) == pytest.approx(1.0)

    def test_even_symmetry(self, kernel):
        u = np.linspace(0.01, kernel.half_width * 0.99, 25)
        np.testing.assert_allclose(kernel(u), kernel(-u), rtol=1e-12)

    def test_compact_support(self, kernel):
        assert kernel(kernel.half_width + 1e-9) == 0.0
        assert kernel(-kernel.half_width - 2.0) == 0.0
        # and, unlike KB, the edge value is exp(-beta), not 0
        assert kernel(kernel.half_width * (1 - 1e-12)) == pytest.approx(
            np.exp(-kernel.beta), rel=1e-4
        )

    def test_monotone_from_center(self, kernel):
        vals = np.asarray(kernel(np.linspace(0.0, kernel.half_width, 50)))
        assert np.all(np.diff(vals) <= 1e-12)

    def test_fourier_matches_numeric_integral(self, kernel):
        """The Gauss-Legendre fourier() vs brute-force quadrature."""
        u = np.linspace(-kernel.half_width, kernel.half_width, 40001)
        du = u[1] - u[0]
        phi = np.asarray(kernel(u))
        for f in (0.0, 0.05, 0.13, 0.31):
            numeric = np.sum(phi * np.cos(2 * np.pi * f * u)) * du
            assert kernel.fourier(f) == pytest.approx(numeric, rel=1e-6, abs=1e-9)

    def test_fourier_vectorized(self, kernel):
        f = np.linspace(0.0, 0.4, 9)
        np.testing.assert_allclose(
            kernel.fourier(f), [kernel.fourier(x) for x in f], rtol=1e-12
        )

    def test_beta_width_table(self):
        """The sigma=2 defaults follow the Barnett calibration: roughly
        2.2 - 2.4 per unit width, wider windows slightly tighter."""
        for w in (2, 3, 4, 5, 6, 8):
            assert 2.0 * w <= es_beta(w) <= 2.5 * w
        assert es_beta(4) / 4 > es_beta(6) / 6 - 0.2


# ----------------------------------------------------------------------
# NuFFT accuracy vs the exact NuDFT
# ----------------------------------------------------------------------
#: measured adjoint NRMSD at table_oversampling default (floor ~7e-4),
#: asserted with ~2.5x headroom
_ES_ADJ_BOUND = {3: 3e-2, 4: 7e-3, 5: 1.8e-3, 6: 1.8e-3, 7: 1.8e-3}


class TestESAccuracy:
    @pytest.fixture(scope="class")
    def problem(self):
        rng = np.random.default_rng(7)
        coords = random_trajectory(400, 2, rng=8)
        vals = rng.standard_normal(400) + 1j * rng.standard_normal(400)
        img = rng.standard_normal((24, 24)) + 1j * rng.standard_normal((24, 24))
        return coords, vals, img

    @pytest.mark.parametrize("width", [3, 4, 5, 6, 7])
    def test_adjoint_accuracy_per_width(self, problem, width):
        coords, vals, _ = problem
        ref = nudft_adjoint(vals, coords, (24, 24))
        err = rel_err(
            NufftPlan((24, 24), coords, width=width, kernel="es").adjoint(vals),
            ref,
        )
        assert err < _ES_ADJ_BOUND[width]

    @pytest.mark.parametrize("width", [4, 5, 6])
    def test_es_tracks_kb_at_same_width(self, problem, width):
        """ES stays within a small factor of KB at every width (equal
        from W = 5 up; slightly behind at the narrow end)."""
        coords, vals, _ = problem
        ref = nudft_adjoint(vals, coords, (24, 24))
        e_kb = rel_err(
            NufftPlan((24, 24), coords, width=width, kernel="kb").adjoint(vals),
            ref,
        )
        e_es = rel_err(
            NufftPlan((24, 24), coords, width=width, kernel="es").adjoint(vals),
            ref,
        )
        assert e_es < 5 * e_kb
        if width >= 5:
            assert e_es < 1.5 * e_kb

    def test_reduced_width_within_clinical_nrmsd(self, problem):
        """The headline claim: ES at W-1 reconstructs within NRMSD
        1e-3 of the KB default-width baseline image."""
        coords, vals, _ = problem
        base = NufftPlan((24, 24), coords, width=6, kernel="kb").adjoint(vals)
        slim = NufftPlan((24, 24), coords, width=5, kernel="es").adjoint(vals)
        assert rel_err(slim, base) < 1e-3

    def test_forward_accuracy(self, problem):
        coords, _, img = problem
        ref = nudft_forward(img, coords)
        err = rel_err(
            NufftPlan((24, 24), coords, kernel="es").forward(img), ref
        )
        assert err < 1.8e-3

    def test_3d_adjoint_accuracy(self):
        rng = np.random.default_rng(3)
        coords = random_trajectory(200, 3, rng=9)
        vals = rng.standard_normal(200) + 1j * rng.standard_normal(200)
        ref = nudft_adjoint(vals, coords, (12, 12, 12))
        err = rel_err(
            NufftPlan((12, 12, 12), coords, kernel="es").adjoint(vals), ref
        )
        assert err < 2.5e-3

    def test_toeplitz_with_es(self, problem):
        """The PSF pass reuses the plan's kernel, so Toeplitz A^H A
        tracks the direct composition for ES exactly as for KB."""
        coords, _, img = problem
        plan = NufftPlan((24, 24), coords, kernel="es")
        op = ToeplitzNormalOperator(plan)
        direct = plan.adjoint(plan.forward(img))
        assert rel_err(op(img), direct) < 2.5e-3

    def test_timings_report_kernel(self, problem):
        coords, vals, _ = problem
        plan = NufftPlan((24, 24), coords, kernel="es")
        plan.adjoint(vals)
        assert plan.timings.kernel == "es"
        assert plan.timings.exec_lane in (
            "numpy", "numba-serial", "numba-parallel"
        )
        plan_kb = NufftPlan((24, 24), coords)
        plan_kb.adjoint(vals)
        assert plan_kb.timings.kernel == "kb"

    def test_kernel_object_accepted(self, problem):
        """A pre-built kernel instance bypasses the string registry."""
        coords, vals, _ = problem
        k = ExponentialSemicircleKernel(width=5, beta=es_beta(5))
        a = NufftPlan((24, 24), coords, width=5, kernel=k).adjoint(vals)
        b = NufftPlan((24, 24), coords, width=5, kernel="es").adjoint(vals)
        np.testing.assert_allclose(a, b, rtol=1e-12)


# ----------------------------------------------------------------------
# gridding with an ES LUT is still an exact adjoint pair
# ----------------------------------------------------------------------
_ES_SETUPS = {
    2: GriddingSetup((16, 16), KernelLUT(make_kernel("es", 4), 32)),
    3: GriddingSetup((16, 16, 16), KernelLUT(make_kernel("es", 4), 32)),
}


@pytest.mark.parametrize(
    "engine", ["slice_and_dice_compiled", "slice_and_dice_jit"]
)
@given(
    seed=st.integers(0, 2**32 - 1),
    m=st.integers(1, 40),
    ndim=st.sampled_from([2, 3]),
)
@settings(max_examples=20, deadline=None)
def test_es_grid_interp_adjoint(engine, seed, m, ndim):
    setup = _ES_SETUPS[ndim]
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, 1, size=(m, ndim)) * np.asarray(setup.grid_shape)
    values = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    grid = rng.standard_normal(setup.grid_shape) + 1j * rng.standard_normal(
        setup.grid_shape
    )
    g = make_gridder(engine, setup)
    lhs = complex(np.vdot(g.grid(coords, values), grid))
    rhs = complex(np.vdot(values, g.interp(grid, coords)))
    assert abs(lhs - rhs) <= 1e-10 * max(abs(lhs), abs(rhs), 1e-30)
    assert g.stats.kernel == "es"
