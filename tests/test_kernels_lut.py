"""Unit tests for the oversampled kernel lookup table."""

import numpy as np
import pytest

from repro.fixedpoint import QFormat
from repro.kernels import KernelLUT, beatty_kernel
from repro.kernels.window import TriangleKernel


@pytest.fixture
def lut() -> KernelLUT:
    return KernelLUT(beatty_kernel(6, 2.0), 32)


class TestConstruction:
    def test_entry_count(self, lut):
        assert lut.n_entries == 6 * 32
        assert lut.table.shape == (6 * 32 + 1,)

    def test_half_table_size(self, lut):
        assert lut.storage_entries == 6 * 32 // 2 + 1

    def test_symmetry_exact(self, lut):
        np.testing.assert_array_equal(lut.table, lut.table[::-1])

    def test_center_is_peak(self, lut):
        assert lut.table[lut.n_entries // 2] == pytest.approx(1.0)

    def test_edges_near_zero(self, lut):
        assert lut.table[0] < 1e-3
        assert lut.table[-1] < 1e-3

    def test_rejects_non_integer_oversampling(self):
        with pytest.raises(ValueError, match="positive integer"):
            KernelLUT(beatty_kernel(6, 2.0), 2.5)

    def test_rejects_zero_oversampling(self):
        with pytest.raises(ValueError, match="positive integer"):
            KernelLUT(beatty_kernel(6, 2.0), 0)

    def test_paper_max_configuration_fits_256(self):
        """W=8, L=64 must need exactly the 256-entry weight SRAM (+1
        shared center point)."""
        lut = KernelLUT(beatty_kernel(8, 2.0), 64)
        assert lut.storage_entries == 257  # 256 intervals + center


class TestIndexing:
    def test_index_of_rounds_to_nearest(self, lut):
        assert lut.index_of(0.0) == 0
        assert lut.index_of(1.0 / 32 * 0.49) == 0
        assert lut.index_of(1.0 / 32 * 0.51) == 1

    def test_index_clipped_at_edges(self, lut):
        assert lut.index_of(1000.0) == lut.n_entries
        assert lut.index_of(np.asarray([-0.2]))[0] == 0

    def test_mirror_maps_to_half(self, lut):
        idx = np.arange(lut.n_entries + 1)
        mirrored = lut.mirror(idx)
        assert np.all(mirrored <= lut.n_entries // 2)
        np.testing.assert_array_equal(lut.table[idx], lut.table[lut.n_entries - idx])

    def test_mirror_reads_match_full_table(self, lut):
        idx = np.arange(lut.n_entries + 1)
        np.testing.assert_array_equal(lut.half_table[lut.mirror(idx)], lut.table[idx])


class TestLookup:
    def test_lookup_matches_kernel_on_table_points(self, lut):
        fwd = np.arange(lut.n_entries + 1) / lut.oversampling
        np.testing.assert_allclose(lut.lookup(fwd), lut.lookup_exact(fwd), atol=1e-12)

    def test_quantization_error_bounded_by_derivative(self, lut):
        # max error ~ max|phi'| * (1/2L); KB W=6 beta~13 has |phi'|<~1.2
        assert lut.max_abs_quantization_error() < 1.2 / (2 * lut.oversampling) * 1.5

    def test_finer_table_smaller_error(self):
        k = beatty_kernel(6, 2.0)
        coarse = KernelLUT(k, 8).max_abs_quantization_error()
        fine = KernelLUT(k, 256).max_abs_quantization_error()
        assert fine < coarse / 8

    def test_lookup_of_center(self, lut):
        assert lut.lookup(3.0) == pytest.approx(1.0)

    def test_triangle_lut_is_exact_on_grid(self):
        lut = KernelLUT(TriangleKernel(width=2), 16)
        fwd = np.arange(33) / 16.0
        np.testing.assert_allclose(
            lut.lookup(fwd), np.maximum(0, 1 - np.abs(fwd - 1.0)), atol=1e-12
        )


class TestQuantizedTable:
    def test_codes_within_format(self, lut):
        fmt = QFormat(1, 14)
        codes = lut.quantized(fmt)
        assert codes.max() <= fmt.max_code
        assert codes.min() >= 0  # the KB window is nonnegative

    def test_dequantized_close_to_float_table(self, lut):
        fmt = QFormat(1, 14)
        back = np.asarray(fmt.dequantize(lut.quantized(fmt)))
        assert np.max(np.abs(back - lut.table)) <= fmt.resolution / 2 + 1e-12

    def test_quantized_symmetry_preserved(self, lut):
        codes = lut.quantized(QFormat(1, 14))
        np.testing.assert_array_equal(codes, codes[::-1])
