"""Unit tests for the interpolation window functions."""

import numpy as np
import pytest

from repro.kernels import (
    BSplineKernel,
    GaussianKernel,
    KaiserBesselKernel,
    TriangleKernel,
    make_kernel,
)

ALL_KERNELS = [
    KaiserBesselKernel(width=6, beta=13.0),
    GaussianKernel(width=6),
    BSplineKernel(width=4),
    TriangleKernel(width=2),
]


@pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: type(k).__name__)
class TestCommonProperties:
    def test_peak_at_zero(self, kernel):
        assert kernel.is_normalized()

    def test_even_symmetry(self, kernel):
        u = np.linspace(0.01, kernel.half_width * 0.99, 25)
        np.testing.assert_allclose(kernel(u), kernel(-u), rtol=1e-12)

    def test_zero_outside_support(self, kernel):
        assert kernel(kernel.half_width + 0.01) == 0.0
        assert kernel(-kernel.half_width - 5.0) == 0.0

    def test_nonnegative_inside(self, kernel):
        u = np.linspace(-kernel.half_width, kernel.half_width, 101)
        assert np.all(np.asarray(kernel(u)) >= -1e-12)

    def test_monotone_decreasing_from_center(self, kernel):
        u = np.linspace(0.0, kernel.half_width, 50)
        vals = np.asarray(kernel(u))
        assert np.all(np.diff(vals) <= 1e-12)

    def test_scalar_in_scalar_out(self, kernel):
        assert isinstance(kernel(0.3), float)

    def test_fourier_matches_numeric_integral(self, kernel):
        """Phi(f) must agree with brute-force numerical quadrature."""
        u = np.linspace(-kernel.half_width, kernel.half_width, 20001)
        du = u[1] - u[0]
        phi = np.asarray(kernel(u))
        for f in (0.0, 0.05, 0.13):
            numeric = np.sum(phi * np.cos(2 * np.pi * f * u)) * du
            analytic = kernel.fourier(f)
            # Gaussian uses the untruncated FT: allow its truncation gap
            tol = 2e-2 if isinstance(kernel, GaussianKernel) else 1e-4
            assert analytic == pytest.approx(numeric, rel=tol, abs=1e-3)

    def test_fourier_even(self, kernel):
        f = np.linspace(0.0, 0.3, 7)
        np.testing.assert_allclose(kernel.fourier(f), kernel.fourier(-f), rtol=1e-12)


class TestKaiserBessel:
    def test_edge_value_small(self):
        k = KaiserBesselKernel(width=6, beta=13.0)
        assert float(k(2.999)) < 1e-3

    def test_beta_controls_concentration(self):
        lo = KaiserBesselKernel(width=6, beta=5.0)
        hi = KaiserBesselKernel(width=6, beta=15.0)
        assert float(hi(2.0)) < float(lo(2.0))

    def test_fourier_imaginary_branch_continuous(self):
        """The sinh->sin continuation must be smooth across beta = pi W f."""
        k = KaiserBesselKernel(width=6, beta=10.0)
        f0 = k.beta / (np.pi * k.width)
        below = k.fourier(f0 * (1 - 1e-7))
        above = k.fourier(f0 * (1 + 1e-7))
        assert below == pytest.approx(above, rel=1e-4)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError, match="width"):
            KaiserBesselKernel(width=0, beta=10.0)

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError, match="beta"):
            KaiserBesselKernel(width=6, beta=-1.0)


class TestGaussian:
    def test_default_sigma(self):
        k = GaussianKernel(width=4)
        assert k.sigma == pytest.approx(0.33 * 2.0)

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError, match="sigma"):
            GaussianKernel(width=4, sigma=-1.0)


class TestBSpline:
    def test_rejects_non_integer_width(self):
        with pytest.raises(ValueError, match="integer"):
            BSplineKernel(width=2.5)

    @pytest.mark.parametrize("order", [1, 2, 3, 4, 6])
    def test_partition_of_unity(self, order):
        """Unnormalized B-splines sum to 1 over integer shifts."""
        k = BSplineKernel(width=order)
        x = np.linspace(-0.5, 0.5, 11)
        total = sum(
            np.asarray(k(x - j)) * k._peak for j in range(-order, order + 1)
        )
        np.testing.assert_allclose(total, 1.0, rtol=1e-9)

    def test_order2_is_triangle(self):
        k = BSplineKernel(width=2)
        u = np.linspace(-1, 1, 21)
        np.testing.assert_allclose(k(u), np.maximum(0, 1 - np.abs(u)), atol=1e-12)


class TestTriangle:
    def test_half_height_at_quarter_width(self):
        k = TriangleKernel(width=4)
        assert float(k(1.0)) == pytest.approx(0.5)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("kaiser_bessel", KaiserBesselKernel),
            ("gaussian", GaussianKernel),
            ("bspline", BSplineKernel),
            ("triangle", TriangleKernel),
        ],
    )
    def test_make_kernel(self, name, cls):
        assert isinstance(make_kernel(name, 4), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            make_kernel("hann", 4)

    def test_kb_default_beta_is_beatty(self):
        from repro.kernels import beatty_beta

        k = make_kernel("kaiser_bessel", 6)
        assert k.beta == pytest.approx(beatty_beta(6, 2.0))
