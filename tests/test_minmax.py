"""Unit tests for min-max interpolation (MIRT's NUFFT algorithm [6])."""

import numpy as np
import pytest

from repro.kernels import MinMaxInterpolator1D
from repro.nudft import nudft_adjoint, nudft_forward
from repro.nufft import MinMaxNufftPlan, NufftPlan
from repro.trajectories import cartesian_trajectory, random_trajectory


class TestInterpolator1D:
    def test_table_shape(self):
        interp = MinMaxInterpolator1D(32, 64, 4, table_oversampling=16)
        assert interp.tables.shape == (17, 4)

    def test_on_grid_sample_is_delta_with_uniform_scaling(self):
        """With uniform scaling factors an on-grid sample's optimal
        weights collapse to a delta (with KB scaling they spread like
        the KB window — the scaling is divided out in image domain)."""
        interp = MinMaxInterpolator1D(
            32, 64, 4, table_oversampling=64, scaling=np.ones(32)
        )
        idx, w = interp.weights(np.asarray([10.0]))
        peak = np.argmax(np.abs(w[0]))
        assert idx[0, peak] == 10
        assert abs(w[0, peak]) == pytest.approx(1.0, abs=1e-6)
        others = np.abs(np.delete(w[0], peak))
        assert np.all(others < 1e-6)

    def test_worst_case_error_decreases_with_width(self):
        errs = [
            MinMaxInterpolator1D(32, 64, j, 64).worst_case_error() for j in (2, 4, 6)
        ]
        assert errs[1] < errs[0] / 10
        assert errs[2] < errs[1] / 10

    def test_kb_scaling_beats_uniform(self):
        """Fessler & Sutton: scaling factors matter — uniform is much
        worse than KB-derived."""
        kb = MinMaxInterpolator1D(32, 64, 6, 64).worst_case_error()
        uni = MinMaxInterpolator1D(
            32, 64, 6, 64, scaling=np.ones(32)
        ).worst_case_error()
        assert kb < uni / 50

    def test_weights_wrap_indices(self):
        interp = MinMaxInterpolator1D(16, 32, 4, 16)
        idx, _ = interp.weights(np.asarray([0.3]))
        assert idx.min() >= 0 and idx.max() < 32
        assert 0 in idx  # window straddles the origin

    def test_validation(self):
        with pytest.raises(ValueError, match="grid_size"):
            MinMaxInterpolator1D(64, 32, 4)
        with pytest.raises(ValueError, match="width"):
            MinMaxInterpolator1D(16, 32, 0)
        with pytest.raises(ValueError, match="scaling"):
            MinMaxInterpolator1D(16, 32, 4, scaling=np.ones(7))
        with pytest.raises(ValueError, match="table_oversampling"):
            MinMaxInterpolator1D(16, 32, 4, table_oversampling=0)


class TestMinMaxNufftPlan:
    @pytest.fixture(scope="class")
    def problem(self):
        rng = np.random.default_rng(3)
        coords = random_trajectory(300, 2, rng=4)
        img = rng.standard_normal((24, 24)) + 1j * rng.standard_normal((24, 24))
        vals = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        return coords, img, vals

    def test_forward_accuracy(self, problem):
        coords, img, _ = problem
        plan = MinMaxNufftPlan((24, 24), coords, width=6, table_oversampling=2048)
        ref = nudft_forward(img, coords)
        err = np.linalg.norm(plan.forward(img) - ref) / np.linalg.norm(ref)
        assert err < 5e-4

    def test_adjoint_accuracy(self, problem):
        coords, _, vals = problem
        plan = MinMaxNufftPlan((24, 24), coords, width=6, table_oversampling=2048)
        ref = nudft_adjoint(vals, coords, (24, 24))
        err = np.linalg.norm(plan.adjoint(vals) - ref) / np.linalg.norm(ref)
        assert err < 5e-4

    def test_beats_kaiser_bessel_at_equal_width(self, problem):
        """The min-max optimality claim, at a width where neither
        method has hit the coordinate-quantization floor."""
        coords, img, _ = problem
        ref = nudft_forward(img, coords)
        mm = MinMaxNufftPlan((24, 24), coords, width=4, table_oversampling=4096)
        kb = NufftPlan((24, 24), coords, width=4, table_oversampling=4096,
                       gridder="naive")
        e_mm = np.linalg.norm(mm.forward(img) - ref) / np.linalg.norm(ref)
        e_kb = np.linalg.norm(kb.forward(img) - ref) / np.linalg.norm(ref)
        assert e_mm < e_kb

    def test_exact_adjoint_pair(self, problem):
        coords, img, vals = problem
        plan = MinMaxNufftPlan((24, 24), coords, width=4, table_oversampling=256)
        lhs = np.vdot(vals, plan.forward(img))
        rhs = np.vdot(plan.adjoint(vals), img)
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_cartesian_accuracy(self):
        """On-grid samples still carry the (tiny) fit residual of the
        KB-scaled least-squares — unlike a LUT kernel they are not
        pointwise exact, but the residual is at the J=4 design error."""
        n = 16
        rng = np.random.default_rng(5)
        coords = cartesian_trajectory(n)
        img = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        plan = MinMaxNufftPlan((n, n), coords, width=4, table_oversampling=32)
        got = plan.forward(img).reshape(n, n)
        ref = nudft_forward(img, coords).reshape(n, n)
        assert np.linalg.norm(got - ref) / np.linalg.norm(ref) < 1e-3

    def test_validation(self, problem):
        coords, img, vals = problem
        with pytest.raises(ValueError, match="image dims"):
            MinMaxNufftPlan((1, 1), coords)
        with pytest.raises(ValueError, match="oversampling"):
            MinMaxNufftPlan((24, 24), coords, oversampling=0.5)
        plan = MinMaxNufftPlan((24, 24), coords, width=4, table_oversampling=64)
        with pytest.raises(ValueError, match="image shape"):
            plan.forward(np.zeros((8, 8), dtype=complex))
        with pytest.raises(ValueError, match="values"):
            plan.adjoint(np.zeros(5, dtype=complex))

    def test_1d(self):
        rng = np.random.default_rng(6)
        coords = random_trajectory(100, 1, rng=7)
        img = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        plan = MinMaxNufftPlan((32,), coords, width=6, table_oversampling=1024)
        ref = nudft_forward(img, coords)
        err = np.linalg.norm(plan.forward(img) - ref) / np.linalg.norm(ref)
        assert err < 1e-3
