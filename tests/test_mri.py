"""Unit tests for the multi-coil MRI substrate."""

import numpy as np
import pytest

from repro.mri import (
    Acquisition,
    RealtimeScenario,
    SenseOperator,
    birdcage_maps,
    coil_combine_adjoint,
    frame_rate_fps,
    keeps_up,
    sense_reconstruction,
    sos_normalize,
)
from repro.nufft import NufftPlan
from repro.phantoms import shepp_logan_2d
from repro.recon import rel_l2_error
from repro.trajectories import golden_angle_radial, ramp_density_compensation


class TestCoilMaps:
    def test_shape(self):
        maps = birdcage_maps(8, 32)
        assert maps.shape == (8, 32, 32)

    def test_complex_with_phase_variation(self):
        maps = birdcage_maps(4, 32)
        assert np.iscomplexobj(maps)
        assert np.std(np.angle(maps[0])) > 0.1

    def test_coils_peak_near_their_side(self):
        maps = birdcage_maps(4, 64, radius=1.2)
        # coil 0 sits at angle 0 -> +x side (columns in our convention)
        mag = np.abs(maps[0])
        left = mag[:, : 16].mean()
        right = mag[:, 48:].mean()
        assert right > left

    def test_distinct_coils(self):
        maps = birdcage_maps(4, 32)
        assert np.linalg.norm(maps[0] - maps[1]) > 0.1

    def test_sos_normalize_unit(self):
        maps = sos_normalize(birdcage_maps(8, 32))
        sos = np.sum(np.abs(maps) ** 2, axis=0)
        np.testing.assert_allclose(sos, 1.0, rtol=1e-10)

    def test_validation(self):
        with pytest.raises(ValueError):
            birdcage_maps(0, 32)
        with pytest.raises(ValueError):
            birdcage_maps(4, 1)
        with pytest.raises(ValueError):
            birdcage_maps(4, 32, radius=-1)
        with pytest.raises(ValueError, match="coils"):
            sos_normalize(np.ones(5))


@pytest.fixture(scope="module")
def sense_problem():
    n = 32
    phantom = shepp_logan_2d(n).astype(complex)
    coords = golden_angle_radial(int(1.2 * n), 2 * n)
    plan = NufftPlan((n, n), coords, width=4)
    maps = sos_normalize(birdcage_maps(6, n))
    op = SenseOperator(plan, maps)
    kspace = op.forward(phantom)
    return op, phantom, kspace


class TestSenseOperator:
    def test_forward_shape(self, sense_problem):
        op, phantom, kspace = sense_problem
        assert kspace.shape == (6, op.n_samples)

    def test_adjoint_identity(self, sense_problem, rng):
        op, _, _ = sense_problem
        x = rng.standard_normal((32, 32)) + 1j * rng.standard_normal((32, 32))
        y = rng.standard_normal((6, op.n_samples)) + 1j * rng.standard_normal(
            (6, op.n_samples)
        )
        lhs = np.vdot(y, op.forward(x))
        rhs = np.vdot(op.adjoint(y), x)
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_normal_equals_adjoint_forward(self, sense_problem, rng):
        op, _, _ = sense_problem
        x = rng.standard_normal((32, 32)) + 1j * rng.standard_normal((32, 32))
        np.testing.assert_allclose(
            op.normal(x), op.adjoint(op.forward(x)), rtol=1e-10
        )

    def test_validation(self, sense_problem):
        op, _, _ = sense_problem
        with pytest.raises(ValueError, match="image shape"):
            op.forward(np.zeros((8, 8), dtype=complex))
        with pytest.raises(ValueError, match="kspace"):
            op.adjoint(np.zeros((2, 3), dtype=complex))
        with pytest.raises(ValueError, match="maps"):
            SenseOperator(op.plan, np.zeros((2, 8, 8), dtype=complex))


class TestSenseRecon:
    def test_cg_sense_recovers_phantom(self, sense_problem):
        op, phantom, kspace = sense_problem
        dcf = ramp_density_compensation(op.plan.coords)
        res = sense_reconstruction(op, kspace, weights=dcf, n_iterations=12)
        assert rel_l2_error(res.image, phantom) < 0.25
        assert res.residual_norms[-1] < res.residual_norms[0]

    def test_cg_beats_adjoint(self, sense_problem):
        op, phantom, kspace = sense_problem
        dcf = ramp_density_compensation(op.plan.coords)
        adj = coil_combine_adjoint(op, kspace, weights=dcf)
        s = np.vdot(adj, phantom) / np.vdot(adj, adj)
        cg = sense_reconstruction(op, kspace, weights=dcf, n_iterations=12)
        assert rel_l2_error(cg.image, phantom) < rel_l2_error(adj * s, phantom)

    def test_zero_data(self, sense_problem):
        op, _, _ = sense_problem
        res = sense_reconstruction(
            op, np.zeros((6, op.n_samples), dtype=complex)
        )
        assert res.converged
        assert np.all(res.image == 0)

    def test_validation(self, sense_problem):
        op, _, kspace = sense_problem
        with pytest.raises(ValueError, match="kspace"):
            sense_reconstruction(op, kspace[:2])
        with pytest.raises(ValueError, match="n_iterations"):
            sense_reconstruction(op, kspace, n_iterations=0)
        with pytest.raises(ValueError, match="nonnegative"):
            sense_reconstruction(op, kspace, weights=-np.ones(op.n_samples))
        with pytest.raises(ValueError, match="weights"):
            coil_combine_adjoint(op, kspace, weights=np.ones(3))


class TestAcquisition:
    def test_roundtrip(self, tmp_path, rng):
        coords = golden_angle_radial(8, 16)
        kspace = rng.standard_normal((4, coords.shape[0])) + 1j * rng.standard_normal(
            (4, coords.shape[0])
        )
        maps = birdcage_maps(4, 16)
        acq = Acquisition(coords, kspace, (16, 16), maps=maps,
                          meta={"sequence": "radial"})
        path = str(tmp_path / "acq.npz")
        acq.save(path)
        back = Acquisition.load(path)
        np.testing.assert_array_equal(back.coords, acq.coords)
        np.testing.assert_array_equal(back.kspace, acq.kspace)
        np.testing.assert_array_equal(back.maps, maps)
        assert back.meta == {"sequence": "radial"}
        assert back.image_shape == (16, 16)

    def test_roundtrip_without_maps(self, tmp_path):
        acq = Acquisition(np.zeros((5, 2)), np.zeros((1, 5)), (8, 8))
        path = str(tmp_path / "a.npz")
        acq.save(path)
        assert Acquisition.load(path).maps is None

    def test_properties(self):
        acq = Acquisition(np.zeros((5, 2)), np.zeros((3, 5)), (8, 8))
        assert acq.n_samples == 5
        assert acq.n_coils == 3
        assert acq.ndim == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="samples"):
            Acquisition(np.zeros((5, 2)), np.zeros((1, 4)), (8, 8))
        with pytest.raises(ValueError, match="rank"):
            Acquisition(np.zeros((5, 2)), np.zeros((1, 5)), (8, 8, 8))
        with pytest.raises(ValueError, match="maps"):
            Acquisition(np.zeros((5, 2)), np.zeros((2, 5)), (8, 8),
                        maps=np.zeros((3, 8, 8)))


class TestRealtime:
    def test_defaults_sane(self):
        sc = RealtimeScenario()
        assert sc.samples_per_frame == 34 * 384
        assert sc.grid_dim == 384

    def test_only_accelerated_recon_keeps_up(self):
        """The paper's §I story, quantified: CPU and Impatient cannot
        sustain a 50 fps radial protocol; SnD GPU and JIGSAW can."""
        from repro.perfmodel import (
            AsicJigsawModel,
            CpuMirtModel,
            GpuImpatientModel,
            GpuSliceDiceModel,
        )

        sc = RealtimeScenario()
        assert not keeps_up(sc, CpuMirtModel())
        assert not keeps_up(sc, GpuImpatientModel())
        assert keeps_up(sc, GpuSliceDiceModel())
        assert keeps_up(sc, AsicJigsawModel())

    def test_frame_rate_scales_with_coils(self):
        from repro.perfmodel import GpuSliceDiceModel

        m = GpuSliceDiceModel()
        one = frame_rate_fps(RealtimeScenario(n_coils=1), m)
        eight = frame_rate_fps(RealtimeScenario(n_coils=8), m)
        assert one == pytest.approx(8 * eight, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            RealtimeScenario(n_coils=0)
        with pytest.raises(ValueError):
            RealtimeScenario(tr_seconds=0)


class TestVoronoiDcf:
    def test_unit_mean(self):
        from repro.trajectories import voronoi_density_compensation

        w = voronoi_density_compensation(golden_angle_radial(16, 32))
        assert np.mean(w) == pytest.approx(1.0)
        assert np.all(w >= 0)

    def test_uniform_grid_gets_equal_weights(self):
        from repro.trajectories import (
            cartesian_trajectory,
            voronoi_density_compensation,
        )

        w = voronoi_density_compensation(cartesian_trajectory(12))
        np.testing.assert_allclose(w, 1.0, rtol=1e-9)

    def test_correlates_with_ramp_for_radial(self):
        from repro.trajectories import voronoi_density_compensation

        coords = golden_angle_radial(24, 48)
        w = voronoi_density_compensation(coords)
        ramp = ramp_density_compensation(coords)
        assert np.corrcoef(w, ramp)[0, 1] > 0.6

    def test_duplicates_share_area(self):
        from repro.trajectories import voronoi_density_compensation

        base = golden_angle_radial(8, 16)
        dup = np.concatenate([base, base[:1]], axis=0)
        w = voronoi_density_compensation(dup)
        # the duplicated generator's two copies split one cell
        assert w[0] == pytest.approx(w[-1])

    def test_small_input_fallback(self):
        from repro.trajectories import voronoi_density_compensation

        w = voronoi_density_compensation(np.zeros((2, 2)))
        np.testing.assert_array_equal(w, 1.0)

    def test_validation(self):
        from repro.trajectories import voronoi_density_compensation

        with pytest.raises(ValueError, match=r"\(M, 2\)"):
            voronoi_density_compensation(np.zeros((5, 3)))
        with pytest.raises(ValueError, match="quantile"):
            voronoi_density_compensation(np.zeros((5, 2)), max_weight_quantile=0)
