"""Tests for the extension features: SnD interp scheduling, batch NuFFT,
Z-binning, energy breakdown, CLI, and d-dimensional gridding."""

import numpy as np
import pytest

from repro.core import SliceAndDiceGridder
from repro.gridding import GriddingSetup, NaiveGridder
from repro.jigsaw import (
    EnergyBreakdown,
    JigsawConfig,
    JigsawSimulator,
    energy_breakdown,
    jigsaw_energy,
    z_bin_samples,
)
from repro.kernels import KernelLUT, beatty_kernel
from repro.nufft import NufftPlan
from repro.trajectories import random_trajectory
from tests.conftest import random_samples


class TestSliceAndDiceInterp:
    def test_matches_base_gather(self, small_setup, rng):
        coords, _ = random_samples(rng, 120, small_setup.grid_shape)
        grid = rng.standard_normal(small_setup.grid_shape) + 1j * rng.standard_normal(
            small_setup.grid_shape
        )
        ref = NaiveGridder(small_setup).interp(grid, coords)
        out = SliceAndDiceGridder(small_setup).interp(grid, coords)
        np.testing.assert_allclose(out, ref, rtol=1e-10, atol=1e-12)

    def test_stats_use_column_checks(self, small_setup, rng):
        coords, _ = random_samples(rng, 70, small_setup.grid_shape)
        g = SliceAndDiceGridder(small_setup)
        g.interp(np.ones(small_setup.grid_shape, dtype=complex), coords)
        assert g.stats.boundary_checks == 70 * 64
        assert g.stats.interpolations == 70 * 36
        assert g.stats.presort_operations == 0

    def test_adjoint_pair_exact(self, small_setup, rng):
        coords, vals = random_samples(rng, 60, small_setup.grid_shape)
        g = SliceAndDiceGridder(small_setup)
        x = rng.standard_normal(small_setup.grid_shape) + 1j * rng.standard_normal(
            small_setup.grid_shape
        )
        lhs = np.vdot(x, g.grid(coords, vals))
        rhs = np.vdot(g.interp(x, coords), vals)
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_empty(self, small_setup):
        g = SliceAndDiceGridder(small_setup)
        out = g.interp(np.zeros(small_setup.grid_shape, dtype=complex), np.zeros((0, 2)))
        assert out.shape == (0,)

    def test_shape_validation(self, small_setup):
        g = SliceAndDiceGridder(small_setup)
        with pytest.raises(ValueError, match="grid shape"):
            g.interp(np.zeros((8, 8), dtype=complex), np.zeros((1, 2)))


class TestDimensionality:
    """Slice-and-Dice is dimension-generic: 1-D and 3-D must work."""

    def test_1d_matches_naive(self, rng):
        setup = GriddingSetup((64,), KernelLUT(beatty_kernel(4, 2.0), 32))
        coords = rng.uniform(0, 64, (100, 1))
        vals = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        ref = NaiveGridder(setup).grid(coords, vals)
        out = SliceAndDiceGridder(setup, tile_size=8).grid(coords, vals)
        np.testing.assert_allclose(out, ref, rtol=1e-10, atol=1e-12)

    def test_3d_matches_naive(self, rng):
        setup = GriddingSetup((16, 16, 16), KernelLUT(beatty_kernel(4, 2.0), 32))
        coords = rng.uniform(0, 16, (150, 3))
        vals = rng.standard_normal(150) + 1j * rng.standard_normal(150)
        ref = NaiveGridder(setup).grid(coords, vals)
        out = SliceAndDiceGridder(setup, tile_size=4).grid(coords, vals)
        np.testing.assert_allclose(out, ref, rtol=1e-10, atol=1e-12)

    def test_3d_binning_matches_naive(self, rng):
        from repro.gridding import BinningGridder

        setup = GriddingSetup((16, 16, 16), KernelLUT(beatty_kernel(4, 2.0), 32))
        coords = rng.uniform(0, 16, (150, 3))
        vals = rng.standard_normal(150) + 1j * rng.standard_normal(150)
        ref = NaiveGridder(setup).grid(coords, vals)
        out = BinningGridder(setup, tile_size=8).grid(coords, vals)
        np.testing.assert_allclose(out, ref, rtol=1e-10, atol=1e-12)

    def test_3d_nufft_vs_nudft(self, rng):
        from repro.nudft import nudft_adjoint

        coords = random_trajectory(200, 3, rng=5)
        vals = rng.standard_normal(200) + 1j * rng.standard_normal(200)
        plan = NufftPlan((8, 8, 8), coords, width=4, table_oversampling=1024,
                         gridder="naive")
        fast = plan.adjoint(vals)
        exact = nudft_adjoint(vals, coords, (8, 8, 8))
        err = np.linalg.norm(fast - exact) / np.linalg.norm(exact)
        assert err < 5e-3


class TestBatchNufft:
    @pytest.fixture
    def plan(self):
        return NufftPlan((16, 16), random_trajectory(80, 2, rng=0), width=4)

    def test_forward_batch_matches_loop(self, plan, rng):
        imgs = rng.standard_normal((3, 16, 16)) + 1j * rng.standard_normal((3, 16, 16))
        batch = plan.forward_batch(imgs)
        for b in range(3):
            np.testing.assert_allclose(batch[b], plan.forward(imgs[b]), rtol=1e-12)

    def test_adjoint_batch_matches_loop(self, plan, rng):
        vals = rng.standard_normal((4, 80)) + 1j * rng.standard_normal((4, 80))
        batch = plan.adjoint_batch(vals)
        for b in range(4):
            np.testing.assert_allclose(batch[b], plan.adjoint(vals[b]), rtol=1e-12)

    def test_batch_timings_accumulate(self, plan, rng):
        """Batch timings cover the whole batched pass (loose wall-clock
        bound: scheduling noise must not flake this).  The warm-up call
        populates the gridder's table cache so the single/batch
        comparison is cached-vs-cached, not build-vs-cached."""
        vals = rng.standard_normal((4, 80)) + 1j * rng.standard_normal((4, 80))
        plan.adjoint(vals[0])  # warm the select-table cache
        plan.adjoint(vals[0])
        single_time = plan.timings.total
        plan.adjoint_batch(vals)
        batch_time = plan.timings.total
        assert batch_time > single_time
        assert batch_time > 0

    def test_shape_validation(self, plan):
        with pytest.raises(ValueError, match="images"):
            plan.forward_batch(np.zeros((16, 16), dtype=complex))
        with pytest.raises(ValueError, match="values"):
            plan.adjoint_batch(np.zeros(80, dtype=complex))


class TestZBinning:
    @pytest.fixture
    def cfg(self):
        return JigsawConfig(
            grid_dim=16, grid_dim_z=8, window_width=4, window_width_z=4,
            table_oversampling=16, variant="3d_slice",
        )

    def test_every_sample_in_wz_slices(self, cfg, rng):
        coords = rng.uniform(0, 8, (100, 3)) * np.asarray([2, 2, 1.0])
        zb = z_bin_samples(coords, cfg)
        assert zb.n_slices == 8
        assert zb.entries == 100 * 4  # Wz slices each
        counts = np.zeros(100, dtype=int)
        for sl in zb.slice_samples:
            counts[sl] += 1
        assert np.all(counts == 4)

    def test_membership_matches_simulator_select(self, cfg, rng):
        """The host's binning must agree with the select unit's z check
        (up to the 1/L coordinate quantization, avoided here by using
        coordinates already on the 1/L grid)."""
        ell = cfg.table_oversampling
        coords = np.column_stack(
            [
                rng.uniform(0, 16, 60),
                rng.uniform(0, 16, 60),
                rng.integers(0, 8 * ell, 60) / ell,
            ]
        )
        zb = z_bin_samples(coords, cfg)
        wz = cfg.window_width_z
        for iz in range(8):
            members = set(zb.slice_samples[iz].tolist())
            for j in range(60):
                fwd = (coords[j, 2] + wz / 2.0 - iz) % 8
                assert (j in members) == (fwd < wz)

    def test_requires_3d_variant(self):
        with pytest.raises(ValueError, match="3d_slice"):
            z_bin_samples(np.zeros((1, 3)), JigsawConfig(table_oversampling=16))

    def test_coords_shape(self, cfg):
        with pytest.raises(ValueError, match=r"\(M, 3\)"):
            z_bin_samples(np.zeros((4, 2)), cfg)

    def test_sort_ops_positive(self, cfg, rng):
        coords = rng.uniform(0, 8, (50, 3))
        assert z_bin_samples(coords, cfg).sort_operations > 0


class TestEnergyBreakdown:
    def test_reconciles_with_power_times_time(self):
        """At full activity the breakdown must reproduce the
        power-times-time energy within the pipeline-drain rounding."""
        cfg = JigsawConfig(grid_dim=1024, window_width=6, table_oversampling=32)
        m = 100_000
        accesses = 2 * m * 36  # read+write per passing MAC
        bd = energy_breakdown(m, accesses, cfg)
        assert bd.total == pytest.approx(jigsaw_energy(m, cfg), rel=0.01)

    def test_from_simulator_counts(self):
        cfg = JigsawConfig(grid_dim=64, window_width=6, table_oversampling=32)
        sim = JigsawSimulator(cfg)
        rng = np.random.default_rng(0)
        m = 3000
        res = sim.grid_2d(rng.uniform(0, 64, (m, 2)), np.ones(m, dtype=complex))
        bd = energy_breakdown(
            m, res.accumulator_reads + res.accumulator_writes, cfg
        )
        assert bd.total > 0
        assert bd.sram_dynamic > 0
        # small grid: leakage scales down with SRAM capacity
        big = energy_breakdown(m, res.accumulator_reads + res.accumulator_writes,
                               JigsawConfig(grid_dim=1024, window_width=6,
                                            table_oversampling=32))
        assert big.sram_leakage > bd.sram_leakage

    def test_validation(self):
        with pytest.raises(ValueError, match="nonnegative"):
            energy_breakdown(-1, 0, JigsawConfig())


class TestCli:
    @pytest.mark.parametrize("cmd", ["datasets", "fig6", "fig7", "fig8", "table2", "realtime"])
    def test_commands_run(self, cmd, capsys):
        from repro.bench.cli import main

        assert main([cmd]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 3

    def test_all(self, capsys):
        from repro.bench.cli import main

        assert main(["all"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out and "Table II" in out

    def test_list(self, capsys):
        from repro.bench.cli import main

        assert main(["list"]) == 0
        assert "fig6" in capsys.readouterr().out


class TestSimdDivergence:
    """§II.C's divergence critique, measured: binning idles most lanes
    (~W^2/B^2), Slice-and-Dice keeps W^2/T^2 busy."""

    def test_binning_efficiency_is_window_over_tile(self, small_setup, rng):
        from repro.gridding import BinningGridder

        coords, vals = random_samples(rng, 200, small_setup.grid_shape)
        g = BinningGridder(small_setup, tile_size=16)
        g.grid(coords, vals)
        # active = M*W^2, slots = processed * B^2
        expected = (200 * 36) / (g.stats.samples_processed * 256)
        assert g.stats.simd_efficiency == pytest.approx(expected)
        assert g.stats.simd_efficiency < 0.2

    def test_snd_efficiency_is_window_over_columns(self, small_setup, rng):
        coords, vals = random_samples(rng, 200, small_setup.grid_shape)
        g = SliceAndDiceGridder(small_setup, tile_size=8)
        g.grid(coords, vals)
        assert g.stats.simd_efficiency == pytest.approx(36 / 64)

    def test_snd_beats_binning(self, small_setup, rng):
        from repro.gridding import BinningGridder

        coords, vals = random_samples(rng, 200, small_setup.grid_shape)
        snd = SliceAndDiceGridder(small_setup, tile_size=8)
        snd.grid(coords, vals)
        binn = BinningGridder(small_setup, tile_size=16)
        binn.grid(coords, vals)
        assert snd.stats.simd_efficiency > 3 * binn.stats.simd_efficiency

    def test_serial_gridder_reports_not_applicable(self, small_setup, rng):
        coords, vals = random_samples(rng, 50, small_setup.grid_shape)
        g = NaiveGridder(small_setup)
        g.grid(coords, vals)
        assert g.stats.simd_efficiency == 0.0
