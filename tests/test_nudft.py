"""Unit tests for the exact NuDFT reference."""

import numpy as np
import pytest

from repro.nudft import NudftOperator, nudft_adjoint, nudft_forward, nudft_matrix
from repro.trajectories import cartesian_trajectory, random_trajectory


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestAgainstFFT:
    """On Cartesian patterns the NuDFT must equal the centered DFT."""

    def test_forward_matches_fft_2d(self, rng):
        n = 8
        img = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        coords = cartesian_trajectory(n)
        got = nudft_forward(img, coords).reshape(n, n)
        # centered DFT: X[k] = sum_p x[p] e^{-2pi i k.(p)/n}, k,p centered
        shifted = np.fft.fftshift(np.fft.fft2(np.fft.ifftshift(img)))
        np.testing.assert_allclose(got, shifted, rtol=1e-10, atol=1e-10)

    def test_adjoint_matches_ifft_2d(self, rng):
        n = 8
        vals = rng.standard_normal(n * n) + 1j * rng.standard_normal(n * n)
        coords = cartesian_trajectory(n)
        got = nudft_adjoint(vals, coords, (n, n))
        grid = vals.reshape(n, n)
        expect = np.fft.fftshift(np.fft.ifft2(np.fft.ifftshift(grid))) * n * n
        np.testing.assert_allclose(got, expect, rtol=1e-10, atol=1e-10)

    def test_forward_1d(self, rng):
        n = 16
        img = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        coords = cartesian_trajectory(n, ndim=1)
        got = nudft_forward(img, coords)
        expect = np.fft.fftshift(np.fft.fft(np.fft.ifftshift(img)))
        np.testing.assert_allclose(got, expect, rtol=1e-10, atol=1e-10)


class TestMatrixConsistency:
    def test_forward_matches_matrix(self, rng):
        img = rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6))
        coords = random_trajectory(40, 2, rng=1)
        a = nudft_matrix(coords, (6, 6))
        np.testing.assert_allclose(
            nudft_forward(img, coords), a @ img.ravel(), rtol=1e-12
        )

    def test_adjoint_matches_matrix_hermitian(self, rng):
        vals = rng.standard_normal(40) + 1j * rng.standard_normal(40)
        coords = random_trajectory(40, 2, rng=2)
        a = nudft_matrix(coords, (6, 6))
        np.testing.assert_allclose(
            nudft_adjoint(vals, coords, (6, 6)).ravel(),
            a.conj().T @ vals,
            rtol=1e-12,
        )

    def test_matrix_shape(self):
        a = nudft_matrix(random_trajectory(10, 2, rng=0), (4, 4))
        assert a.shape == (10, 16)

    def test_matrix_unit_modulus(self):
        a = nudft_matrix(random_trajectory(10, 2, rng=0), (4, 4))
        np.testing.assert_allclose(np.abs(a), 1.0, rtol=1e-12)


class TestAdjointness:
    def test_inner_product_identity(self, rng):
        coords = random_trajectory(30, 2, rng=3)
        x = rng.standard_normal((8, 8)) + 1j * rng.standard_normal((8, 8))
        y = rng.standard_normal(30) + 1j * rng.standard_normal(30)
        lhs = np.vdot(y, nudft_forward(x, coords))
        rhs = np.vdot(nudft_adjoint(y, coords, (8, 8)), x)
        assert lhs == pytest.approx(rhs, rel=1e-12)


class TestChunking:
    def test_chunked_equals_unchunked(self, rng, monkeypatch):
        """Results must not depend on the internal chunk size."""
        import repro.nudft.direct as direct

        coords = random_trajectory(100, 2, rng=4)
        img = rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6))
        full = nudft_forward(img, coords)
        monkeypatch.setattr(direct, "_CHUNK", 7)
        np.testing.assert_allclose(direct.nudft_forward(img, coords), full, rtol=1e-12)


class TestValidation:
    def test_forward_coord_dim_mismatch(self, rng):
        with pytest.raises(ValueError, match="coords"):
            nudft_forward(np.zeros((4, 4), dtype=complex), np.zeros((5, 3)))

    def test_adjoint_count_mismatch(self):
        with pytest.raises(ValueError, match="values"):
            nudft_adjoint(np.zeros(3, dtype=complex), np.zeros((5, 2)), (4, 4))


class TestOperator:
    def test_flops(self):
        op = NudftOperator(random_trajectory(10, 2, rng=0), (4, 4))
        assert op.flops == 10 * 16

    def test_forward_shape_check(self):
        op = NudftOperator(random_trajectory(10, 2, rng=0), (4, 4))
        with pytest.raises(ValueError, match="shape"):
            op.forward(np.zeros((5, 5), dtype=complex))

    def test_roundtrip_wellposed(self, rng):
        """With M >> N^d and random sampling, A^H A approx M/N^d * I
        (rows are random phases): adjoint(forward(x)) ~ M * x / ...
        just verify the operator pair runs and is consistent."""
        op = NudftOperator(random_trajectory(200, 2, rng=5), (4, 4))
        x = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        y = op.forward(x)
        xs = op.adjoint(y) / op.n_samples
        # diagonal-dominant Gram: correlation with truth is strong
        corr = np.abs(np.vdot(xs, x)) / (np.linalg.norm(xs) * np.linalg.norm(x))
        assert corr > 0.9
