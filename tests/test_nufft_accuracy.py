"""NuFFT accuracy against the exact NuDFT (the correctness oracle)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nudft import nudft_adjoint, nudft_forward
from repro.nufft import NufftPlan
from repro.trajectories import cartesian_trajectory, random_trajectory


def rel_err(a, b):
    return np.linalg.norm(a - b) / np.linalg.norm(b)


class TestAgainstNuDFT:
    @pytest.fixture
    def problem(self):
        rng = np.random.default_rng(7)
        coords = random_trajectory(400, 2, rng=8)
        vals = rng.standard_normal(400) + 1j * rng.standard_normal(400)
        img = rng.standard_normal((24, 24)) + 1j * rng.standard_normal((24, 24))
        return coords, vals, img

    def test_adjoint_accuracy_default(self, problem):
        coords, vals, _ = problem
        plan = NufftPlan((24, 24), coords)
        assert rel_err(plan.adjoint(vals), nudft_adjoint(vals, coords, (24, 24))) < 1e-3

    def test_forward_accuracy_default(self, problem):
        coords, _, img = problem
        plan = NufftPlan((24, 24), coords)
        assert rel_err(plan.forward(img), nudft_forward(img, coords)) < 1e-3

    def test_accuracy_improves_with_table_oversampling(self, problem):
        """Positions are rounded to 1/L (the paper's design) so error
        is ~1/L until the aliasing floor."""
        coords, vals, _ = problem
        ref = nudft_adjoint(vals, coords, (24, 24))
        errs = [
            rel_err(NufftPlan((24, 24), coords, table_oversampling=L).adjoint(vals), ref)
            for L in (32, 256, 2048)
        ]
        assert errs[1] < errs[0] / 4
        assert errs[2] < errs[1] / 4

    def test_accuracy_improves_with_width_at_high_l(self, problem):
        coords, vals, _ = problem
        ref = nudft_adjoint(vals, coords, (24, 24))
        e4 = rel_err(
            NufftPlan((24, 24), coords, width=4, table_oversampling=2**15).adjoint(vals),
            ref,
        )
        e8 = rel_err(
            NufftPlan((24, 24), coords, width=8, table_oversampling=2**15).adjoint(vals),
            ref,
        )
        assert e8 < e4 / 5

    def test_reduced_oversampling_with_wider_window(self, problem):
        """Beatty: sigma=1.5 needs a wider window for the same accuracy
        (the paper's §II.B trade-off)."""
        coords, vals, _ = problem
        ref = nudft_adjoint(vals, coords, (24, 24))
        narrow = NufftPlan(
            (24, 24), coords, oversampling=1.5, width=4, table_oversampling=4096,
            gridder="naive",
        )
        wide = NufftPlan(
            (24, 24), coords, oversampling=1.5, width=10, table_oversampling=4096,
            gridder="naive",
        )
        assert rel_err(wide.adjoint(vals), ref) < rel_err(narrow.adjoint(vals), ref)

    def test_cartesian_is_near_exact(self):
        """On-grid samples hit LUT entries exactly: NuFFT == DFT to
        rounding error."""
        n = 16
        rng = np.random.default_rng(3)
        coords = cartesian_trajectory(n)
        vals = rng.standard_normal(n * n) + 1j * rng.standard_normal(n * n)
        plan = NufftPlan((n, n), coords, table_oversampling=64)
        ref = nudft_adjoint(vals, coords, (n, n))
        assert rel_err(plan.adjoint(vals), ref) < 1e-9


class TestAdjointPair:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_forward_adjoint_inner_product(self, seed):
        rng = np.random.default_rng(seed)
        coords = random_trajectory(60, 2, rng=seed)
        plan = NufftPlan((16, 16), coords, width=4, table_oversampling=64)
        x = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
        y = rng.standard_normal(60) + 1j * rng.standard_normal(60)
        lhs = np.vdot(y, plan.forward(x))
        rhs = np.vdot(plan.adjoint(y), x)
        assert abs(lhs - rhs) < 1e-10 * max(abs(lhs), 1.0)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_gram_operator_is_psd(self, seed):
        rng = np.random.default_rng(seed)
        coords = random_trajectory(50, 2, rng=seed + 1)
        plan = NufftPlan((16, 16), coords, width=4, table_oversampling=64)
        x = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
        quad = np.vdot(x, plan.adjoint(plan.forward(x))).real
        assert quad >= -1e-9


class Test1D:
    def test_1d_adjoint(self):
        rng = np.random.default_rng(5)
        coords = random_trajectory(80, 1, rng=6)
        vals = rng.standard_normal(80) + 1j * rng.standard_normal(80)
        plan = NufftPlan((32,), coords, width=6)
        assert rel_err(plan.adjoint(vals), nudft_adjoint(vals, coords, (32,))) < 1e-3
