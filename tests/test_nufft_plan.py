"""Unit tests for the NuFFT plan (construction, shapes, timings)."""

import numpy as np
import pytest

from repro.nufft import NufftPlan
from repro.kernels import GaussianKernel
from repro.trajectories import random_trajectory


@pytest.fixture
def coords():
    return random_trajectory(100, 2, rng=0)


class TestConstruction:
    def test_grid_shape_sigma2(self, coords):
        plan = NufftPlan((32, 32), coords)
        assert plan.grid_shape == (64, 64)

    def test_grid_shape_sigma_1_5_rounds_even(self, coords):
        plan = NufftPlan((32, 32), coords, oversampling=1.5, width=8, gridder="naive")
        assert plan.grid_shape == (48, 48)

    def test_rejects_small_image(self, coords):
        with pytest.raises(ValueError, match="image dims"):
            NufftPlan((1, 1), coords)

    def test_rejects_sigma_leq_1(self, coords):
        with pytest.raises(ValueError, match="oversampling"):
            NufftPlan((32, 32), coords, oversampling=1.0)

    def test_rejects_coord_rank_mismatch(self):
        with pytest.raises(ValueError, match="dimension"):
            NufftPlan((32, 32), np.zeros((5, 3)))

    def test_custom_kernel(self, coords):
        plan = NufftPlan((32, 32), coords, kernel=GaussianKernel(width=6))
        assert isinstance(plan.kernel, GaussianKernel)

    def test_gridder_instance_passthrough(self, coords):
        from repro.gridding import GriddingSetup, NaiveGridder
        from repro.kernels import KernelLUT, beatty_kernel

        setup = GriddingSetup((64, 64), KernelLUT(beatty_kernel(6, 2.0), 512))
        g = NaiveGridder(setup)
        plan = NufftPlan((32, 32), coords, gridder=g)
        assert plan.gridder is g

    def test_grid_coords_in_range(self, coords):
        plan = NufftPlan((32, 32), coords)
        assert plan.grid_coords.min() >= 0
        assert plan.grid_coords.max() < 64

    def test_n_samples(self, coords):
        assert NufftPlan((32, 32), coords).n_samples == 100


class TestShapesAndValidation:
    def test_adjoint_output_shape(self, coords):
        plan = NufftPlan((32, 32), coords)
        assert plan.adjoint(np.ones(100, dtype=complex)).shape == (32, 32)

    def test_forward_output_shape(self, coords):
        plan = NufftPlan((32, 32), coords)
        assert plan.forward(np.ones((32, 32), dtype=complex)).shape == (100,)

    def test_adjoint_value_count_mismatch(self, coords):
        plan = NufftPlan((32, 32), coords)
        with pytest.raises(ValueError, match="values"):
            plan.adjoint(np.ones(50, dtype=complex))

    def test_forward_image_shape_mismatch(self, coords):
        plan = NufftPlan((32, 32), coords)
        with pytest.raises(ValueError, match="image shape"):
            plan.forward(np.ones((16, 16), dtype=complex))

    def test_rectangular_image(self):
        coords = random_trajectory(64, 2, rng=1)
        plan = NufftPlan((16, 32), coords, width=4)
        img = plan.adjoint(np.ones(64, dtype=complex))
        assert img.shape == (16, 32)
        assert plan.forward(img).shape == (64,)


class TestTimings:
    def test_timings_populated_adjoint(self, coords):
        plan = NufftPlan((32, 32), coords)
        plan.adjoint(np.ones(100, dtype=complex))
        t = plan.timings
        assert t.gridding > 0 and t.fft > 0 and t.apodization > 0
        assert t.copy_seconds >= 0
        # the four stages partition the call: shares must sum to 1
        assert t.total == pytest.approx(
            t.gridding + t.fft + t.apodization + t.copy_seconds
        )
        assert t.fft_backend in ("numpy", "scipy", "pyfftw")
        assert t.fft_workers >= 1
        assert t.peak_bytes > 0

    def test_timings_populated_forward(self, coords):
        plan = NufftPlan((32, 32), coords)
        plan.forward(np.ones((32, 32), dtype=complex))
        assert plan.timings.total > 0

    def test_gridding_share_in_unit_interval(self, coords):
        plan = NufftPlan((32, 32), coords)
        plan.adjoint(np.ones(100, dtype=complex))
        assert 0.0 < plan.timings.gridding_share() < 1.0

    def test_zero_timings_share(self):
        from repro.nufft import NufftTimings

        assert NufftTimings().gridding_share() == 0.0


class TestGridderBackends:
    @pytest.mark.parametrize("name", ["naive", "binning", "slice_and_dice"])
    def test_backends_give_same_image(self, coords, name):
        ref = NufftPlan((32, 32), coords, gridder="naive")
        plan = NufftPlan((32, 32), coords, gridder=name)
        v = np.exp(2j * np.pi * np.arange(100) / 7)
        np.testing.assert_allclose(plan.adjoint(v), ref.adjoint(v), rtol=1e-9, atol=1e-12)


class TestPrecision:
    @pytest.mark.parametrize("lane", ["single", "simulate-single"])
    def test_single_precision_error_floor(self, coords, lane):
        """Both single lanes must land near the float32 epsilon floor,
        far above double but far below the kernel approximation."""
        rng = np.random.default_rng(9)
        vals = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        double = NufftPlan((32, 32), coords, table_oversampling=2**14,
                           gridder="naive")
        single = NufftPlan((32, 32), coords, table_oversampling=2**14,
                           gridder="naive", precision=lane)
        a = double.adjoint(vals)
        b = single.adjoint(vals)
        err = np.linalg.norm(a - b) / np.linalg.norm(a)
        assert 1e-8 < err < 1e-5

    def test_single_precision_forward_runs(self, coords):
        plan = NufftPlan((32, 32), coords, precision="single")
        out = plan.forward(np.ones((32, 32), dtype=complex))
        assert out.shape == (100,)
        assert out.dtype == np.complex64

    def test_single_lane_is_true_complex64(self, coords):
        """precision='single' computes in complex64 end to end: the
        gridder setup, the buffer pool keys, and the outputs all carry
        the working dtype — no complex128 full-grid arrays."""
        plan = NufftPlan((32, 32), coords, precision="single")
        assert plan.cdtype == np.complex64
        assert plan.gridder.setup.dtype == np.dtype(np.complex64)
        vals = np.ones(100, dtype=np.complex64)
        img = plan.adjoint(vals)
        assert img.dtype == np.complex64
        # every pooled grid buffer is complex64
        pool_dtypes = {key[1] for key in plan.buffer_pool._free}
        assert pool_dtypes <= {np.dtype(np.complex64).str}
        # warm call: the only full-grid transient is the FFT output,
        # at complex64 width (half of a complex128 grid)
        plan.adjoint(vals)
        grid_nbytes = int(np.prod(plan.grid_shape)) * 8
        assert plan.timings.peak_bytes == grid_nbytes
        assert plan.timings.precision == "single"
        assert plan.timings.fused

    def test_simulate_single_matches_legacy_comparator_bits(self, coords):
        """simulate-single is the old stepwise-rounding comparator,
        reproduced bit for bit by hand."""
        rng = np.random.default_rng(3)
        vals = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        plan = NufftPlan((32, 32), coords, gridder="naive",
                         fft_backend="numpy", precision="simulate-single")
        got = plan.adjoint(vals)
        assert got.dtype == np.complex128

        def rnd(a):
            return a.astype(np.complex64).astype(np.complex128)

        ref_plan = NufftPlan((32, 32), coords, gridder="naive",
                             fft_backend="numpy", fused=False)
        grid = rnd(ref_plan.gridder.grid(
            ref_plan.grid_coords, rnd(np.asarray(vals, dtype=np.complex128))
        ))
        spectrum = rnd(np.fft.ifftn(grid, norm="forward"))
        expected = rnd(ref_plan._apodize(ref_plan._crop(spectrum)))
        assert np.array_equal(got, expected)

    def test_gridder_instance_dtype_mismatch_rejected(self, coords):
        from repro.gridding import GriddingSetup, make_gridder
        from repro.kernels import KernelLUT, beatty_kernel

        plan = NufftPlan((32, 32), coords, precision="single")
        lut = KernelLUT(beatty_kernel(6, 2.0), 512)
        setup = GriddingSetup(plan.grid_shape, lut)  # complex128 setup
        gridder = make_gridder("naive", setup)
        with pytest.raises(ValueError, match="dtype"):
            NufftPlan((32, 32), coords, gridder=gridder, precision="single")

    def test_rejects_unknown_precision(self, coords):
        with pytest.raises(ValueError, match="precision"):
            NufftPlan((32, 32), coords, precision="half")
