"""Unit tests for the Toeplitz Gram operator (Impatient's strategy)."""

import numpy as np
import pytest

from repro.nufft import NufftPlan, ToeplitzGram
from repro.trajectories import radial_trajectory, random_trajectory


@pytest.fixture
def plan():
    return NufftPlan((16, 16), random_trajectory(200, 2, rng=0), width=6,
                     table_oversampling=1024)


class TestToeplitzGram:
    def test_matches_forward_adjoint(self, plan, rng):
        gram = ToeplitzGram(plan)
        x = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
        direct = plan.adjoint(plan.forward(x))
        embedded = gram.apply(x)
        assert np.linalg.norm(embedded - direct) / np.linalg.norm(direct) < 5e-3

    def test_weighted_gram(self, plan, rng):
        w = rng.uniform(0.5, 2.0, plan.n_samples)
        gram = ToeplitzGram(plan, weights=w)
        x = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
        direct = plan.adjoint(w * plan.forward(x))
        embedded = gram.apply(x)
        assert np.linalg.norm(embedded - direct) / np.linalg.norm(direct) < 5e-3

    def test_linear(self, plan, rng):
        gram = ToeplitzGram(plan)
        a = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
        np.testing.assert_allclose(
            gram.apply(a + 3j * b), gram.apply(a) + 3j * gram.apply(b), rtol=1e-10,
            atol=1e-10,
        )

    def test_hermitian(self, plan, rng):
        gram = ToeplitzGram(plan)
        x = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
        y = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
        lhs = np.vdot(y, gram.apply(x))
        rhs = np.vdot(gram.apply(y), x)
        assert lhs == pytest.approx(rhs, rel=1e-8)

    def test_callable_alias(self, plan, rng):
        gram = ToeplitzGram(plan)
        x = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
        np.testing.assert_array_equal(gram(x), gram.apply(x))

    def test_shape_validation(self, plan):
        gram = ToeplitzGram(plan)
        with pytest.raises(ValueError, match="image shape"):
            gram.apply(np.zeros((8, 8), dtype=complex))

    def test_weight_count_validation(self, plan):
        with pytest.raises(ValueError, match="weights"):
            ToeplitzGram(plan, weights=np.ones(7))

    def test_radial_psf_structure(self):
        """For a radial trajectory the Gram of a delta is the PSF: peak
        at the delta's location."""
        plan = NufftPlan((16, 16), radial_trajectory(32, 32), width=6)
        gram = ToeplitzGram(plan)
        delta = np.zeros((16, 16), dtype=complex)
        delta[8, 8] = 1.0
        psf = np.abs(gram.apply(delta))
        assert np.unravel_index(np.argmax(psf), psf.shape) == (8, 8)
