"""Unit tests for the set-associative cache simulator."""

import numpy as np
import pytest

from repro.perfmodel import CacheModel, CacheStats


class TestConstruction:
    def test_set_count(self):
        c = CacheModel(64 * 1024, line_bytes=64, associativity=8)
        assert c.n_sets == 128

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            CacheModel(32, line_bytes=64)

    def test_rejects_non_pow2_line(self):
        with pytest.raises(ValueError, match="power of two"):
            CacheModel(1024, line_bytes=48)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError, match="associativity"):
            CacheModel(1024, line_bytes=64, associativity=7)


class TestStats:
    def test_hit_rate(self):
        s = CacheStats(accesses=10, misses=3)
        assert s.hits == 7
        assert s.hit_rate == pytest.approx(0.7)
        assert s.miss_rate == pytest.approx(0.3)

    def test_empty_trace(self):
        s = CacheModel(1024).simulate(np.zeros(0, dtype=np.int64))
        assert s.accesses == 0
        assert s.hit_rate == 1.0


class TestBehaviour:
    def test_repeated_access_hits(self):
        c = CacheModel(1024, line_bytes=64)
        s = c.simulate(np.zeros(100, dtype=np.int64))
        assert s.misses == 1

    def test_spatial_locality_within_line(self):
        """8-byte elements: 8 consecutive elements share one 64-byte line."""
        c = CacheModel(4096, line_bytes=64)
        s = c.simulate(np.arange(64), element_bytes=8)
        assert s.misses == 8

    def test_streaming_too_big_to_cache(self):
        """A working set far beyond capacity, touched twice, misses
        (almost) every line both times."""
        c = CacheModel(1024, line_bytes=64, associativity=2)
        trace = np.concatenate([np.arange(0, 64 * 512, 8)] * 2) // 1  # element idx
        s = c.simulate(trace, element_bytes=8)
        assert s.miss_rate > 0.9

    def test_small_working_set_second_pass_hits(self):
        c = CacheModel(64 * 1024, line_bytes=64)
        one_pass = np.arange(0, 1024)
        s = c.simulate(np.concatenate([one_pass, one_pass]), element_bytes=8)
        # first pass misses 128 lines, second pass all hits
        assert s.misses == 128

    def test_lru_eviction_order(self):
        """Direct-mapped-like conflict: two lines mapping to the same
        set with associativity 1 thrash."""
        c = CacheModel(64 * 2, line_bytes=64, associativity=1)  # 2 sets
        # element stride chosen so both addresses map to set 0
        a = 0
        b = (c.n_sets * c.line_bytes) // 8  # next line in the same set
        trace = np.asarray([a, b] * 20)
        s = c.simulate(trace, element_bytes=8)
        assert s.miss_rate == 1.0

    def test_associativity_fixes_thrashing(self):
        c = CacheModel(64 * 4, line_bytes=64, associativity=2)  # 2 sets, 2-way
        a, b = 0, (c.n_sets * c.line_bytes) // 8
        trace = np.asarray([a, b] * 20)
        s = c.simulate(trace, element_bytes=8)
        assert s.misses == 2  # both lines stay resident

    def test_element_bytes_validation(self):
        with pytest.raises(ValueError, match="element_bytes"):
            CacheModel(1024).simulate(np.zeros(1, dtype=np.int64), element_bytes=0)


class TestGridderLocality:
    """§VI.A reproduced from first principles: Slice-and-Dice's access
    stream hits a small cache far more often than naive input-driven
    gridding on the same problem."""

    def test_slice_and_dice_beats_naive_locality(self):
        from repro.core import SliceAndDiceGridder
        from repro.gridding import GriddingSetup, NaiveGridder
        from repro.kernels import KernelLUT, beatty_kernel

        rng = np.random.default_rng(0)
        g = 128
        setup = GriddingSetup((g, g), KernelLUT(beatty_kernel(6, 2.0), 32))
        coords = rng.uniform(0, g, (2000, 2))
        cache = CacheModel(16 * 1024, line_bytes=64, associativity=8)

        naive_trace = NaiveGridder(setup).address_trace(coords)
        snd_trace = SliceAndDiceGridder(setup).address_trace(coords)
        naive_stats = cache.simulate(naive_trace, element_bytes=8)
        snd_stats = cache.simulate(snd_trace, element_bytes=8)
        assert snd_stats.hit_rate > naive_stats.hit_rate + 0.15
