"""Unit tests for the calibrated CPU/GPU/ASIC performance models."""

import numpy as np
import pytest

from repro.bench import (
    FIG6_GRIDDING_SPEEDUP,
    FIG7_END_TO_END_SPEEDUP,
    FIG8_ENERGY_J,
    PAPER_IMAGES,
)
from repro.bench.reference import MIRT_GRIDDING_SECONDS
from repro.perfmodel import (
    AsicJigsawModel,
    CpuMirtModel,
    GpuEnergyModel,
    GpuImpatientModel,
    GpuSliceDiceModel,
)
from repro.perfmodel.hostfft import device_rest_seconds, cpu_nufft_seconds


class TestCpuModel:
    def test_exact_on_calibration_points(self):
        assert np.max(np.abs(CpuMirtModel.calibration_residuals())) < 1e-9

    def test_monotone_in_m(self):
        m = CpuMirtModel()
        assert m.gridding_seconds(200_000, 512) > m.gridding_seconds(100_000, 512)

    def test_point_cost_monotone_in_grid(self):
        m = CpuMirtModel()
        assert m.point_cost_seconds(1024) >= m.point_cost_seconds(128)

    def test_setup_overhead_positive(self):
        assert CpuMirtModel().setup_seconds > 0

    def test_nufft_uses_996_percent_share(self):
        m = CpuMirtModel()
        g = m.gridding_seconds(100_000, 512)
        assert m.nufft_seconds(100_000, 512) == pytest.approx(g / 0.996)

    def test_validation(self):
        m = CpuMirtModel()
        with pytest.raises(ValueError):
            m.gridding_seconds(-1, 512)
        with pytest.raises(ValueError):
            m.point_cost_seconds(0)
        with pytest.raises(ValueError):
            CpuMirtModel(window_width=0)


class TestGpuModels:
    def test_snd_exact_on_calibration_points(self):
        assert np.max(np.abs(GpuSliceDiceModel().calibration_residuals())) < 1e-9

    def test_impatient_fit_within_60_percent(self):
        assert np.max(np.abs(GpuImpatientModel().calibration_residuals())) < 0.6

    def test_snd_launch_overhead_microseconds(self):
        """~10 us kernel-launch class overhead falls out of the data."""
        launch = GpuSliceDiceModel().launch_seconds
        assert 1e-6 < launch < 100e-6

    def test_paper_counters_attached(self):
        assert GpuSliceDiceModel.l2_hit_rate == pytest.approx(0.98)
        assert GpuImpatientModel.occupancy == pytest.approx(0.47)

    def test_snd_faster_than_impatient_everywhere(self):
        snd, imp = GpuSliceDiceModel(), GpuImpatientModel()
        for im in PAPER_IMAGES:
            assert snd.gridding_seconds(im.m, im.grid_dim) < imp.gridding_seconds(
                im.m, im.grid_dim
            )

    def test_validation(self):
        snd = GpuSliceDiceModel()
        with pytest.raises(ValueError):
            snd.gridding_seconds(-1, 128)
        with pytest.raises(ValueError):
            snd.sample_cost_seconds(0)
        imp = GpuImpatientModel()
        with pytest.raises(ValueError):
            imp.gridding_seconds(1, 0)


class TestAsicModel:
    def test_gridding_is_cycle_law(self):
        m = AsicJigsawModel()
        assert m.gridding_seconds(1000) == pytest.approx(1012e-9)

    def test_share_averages_to_quarter(self):
        """§VI: gridding consumes ~25 % of JIGSAW's NuFFT time."""
        m = AsicJigsawModel()
        shares = [m.gridding_share(im.m, im.grid_dim) for im in PAPER_IMAGES]
        assert np.mean(shares) == pytest.approx(0.25, abs=0.05)


class TestFigureReproduction:
    """The headline check: modelled speedups land on the paper's bars."""

    @pytest.mark.parametrize("i", range(5))
    def test_fig6_slice_and_dice(self, i):
        im = PAPER_IMAGES[i]
        cpu, snd = CpuMirtModel(), GpuSliceDiceModel()
        speedup = cpu.gridding_seconds(im.m, im.grid_dim) / snd.gridding_seconds(
            im.m, im.grid_dim
        )
        assert speedup == pytest.approx(
            FIG6_GRIDDING_SPEEDUP["slice_and_dice_gpu"][i], rel=0.02
        )

    @pytest.mark.parametrize("i", range(5))
    def test_fig6_jigsaw(self, i):
        im = PAPER_IMAGES[i]
        cpu, asic = CpuMirtModel(), AsicJigsawModel()
        speedup = cpu.gridding_seconds(im.m, im.grid_dim) / asic.gridding_seconds(im.m)
        assert speedup == pytest.approx(FIG6_GRIDDING_SPEEDUP["jigsaw"][i], rel=0.02)

    @pytest.mark.parametrize("i", range(5))
    def test_fig6_impatient_shape(self, i):
        im = PAPER_IMAGES[i]
        cpu, imp = CpuMirtModel(), GpuImpatientModel()
        speedup = cpu.gridding_seconds(im.m, im.grid_dim) / imp.gridding_seconds(
            im.m, im.grid_dim
        )
        assert speedup == pytest.approx(
            FIG6_GRIDDING_SPEEDUP["impatient"][i], rel=0.65
        )

    @pytest.mark.parametrize("i", range(5))
    def test_fig7_slice_and_dice(self, i):
        im = PAPER_IMAGES[i]
        cpu, snd = CpuMirtModel(), GpuSliceDiceModel()
        speedup = cpu.nufft_seconds(im.m, im.grid_dim) / snd.nufft_seconds(
            im.m, im.grid_dim
        )
        assert speedup == pytest.approx(
            FIG7_END_TO_END_SPEEDUP["slice_and_dice_gpu"][i], rel=0.05
        )

    @pytest.mark.parametrize("i", range(5))
    def test_fig7_jigsaw(self, i):
        im = PAPER_IMAGES[i]
        cpu, asic = CpuMirtModel(), AsicJigsawModel()
        speedup = cpu.nufft_seconds(im.m, im.grid_dim) / asic.nufft_seconds(
            im.m, im.grid_dim
        )
        assert speedup == pytest.approx(FIG7_END_TO_END_SPEEDUP["jigsaw"][i], rel=0.05)

    def test_fig6_averages(self):
        cpu, snd, asic = CpuMirtModel(), GpuSliceDiceModel(), AsicJigsawModel()
        snd_avg = np.mean(
            [
                cpu.gridding_seconds(im.m, im.grid_dim)
                / snd.gridding_seconds(im.m, im.grid_dim)
                for im in PAPER_IMAGES
            ]
        )
        jig_avg = np.mean(
            [
                cpu.gridding_seconds(im.m, im.grid_dim) / asic.gridding_seconds(im.m)
                for im in PAPER_IMAGES
            ]
        )
        assert snd_avg > 250  # "over 250x"
        assert jig_avg > 1500  # "over 1500x"


class TestEnergyModel:
    def test_snd_energy_within_5_percent(self):
        em = GpuEnergyModel("slice_and_dice_gpu")
        assert np.max(np.abs(em.calibration_residuals())) < 0.05

    def test_impatient_energy_within_factor_2(self):
        em = GpuEnergyModel("impatient")
        assert np.max(np.abs(em.calibration_residuals())) < 1.5

    def test_effective_powers_sane(self):
        """Titan Xp board: effective draw must be between idle (~15 W)
        and TDP (250 W)."""
        for impl in ("slice_and_dice_gpu", "impatient"):
            p = GpuEnergyModel(impl).effective_power_w
            assert 15 < p < 250

    def test_unknown_implementation(self):
        with pytest.raises(ValueError, match="implementation"):
            GpuEnergyModel("tpu")

    def test_dispatch_function(self):
        from repro.perfmodel import gridding_energy_joules

        e_jig = gridding_energy_joules("jigsaw", 3772, 128)
        assert e_jig == pytest.approx(821e-9, rel=0.005)
        e_snd = gridding_energy_joules("slice_and_dice_gpu", 3772, 128)
        assert e_snd > e_jig * 100  # orders of magnitude apart

    def test_fig8_energy_ordering(self):
        """Impatient >> SnD GPU >> JIGSAW on every image."""
        from repro.perfmodel import gridding_energy_joules

        for im in PAPER_IMAGES:
            e_imp = gridding_energy_joules("impatient", im.m, im.grid_dim)
            e_snd = gridding_energy_joules("slice_and_dice_gpu", im.m, im.grid_dim)
            e_jig = gridding_energy_joules("jigsaw", im.m, im.grid_dim)
            assert e_imp > e_snd > e_jig


class TestHostFft:
    def test_monotone_in_grid(self):
        assert device_rest_seconds(1024) > device_rest_seconds(128)

    def test_extrapolation_below(self):
        assert 0 < device_rest_seconds(32) < device_rest_seconds(128)

    def test_extrapolation_above(self):
        assert device_rest_seconds(2048) > device_rest_seconds(1024)

    def test_validation(self):
        with pytest.raises(ValueError):
            device_rest_seconds(0)

    def test_cpu_share(self):
        assert cpu_nufft_seconds(0.996) == pytest.approx(1.0)


class TestSweep:
    def test_speedup_series_monotone_for_jigsaw(self):
        """JIGSAW's speedup over MIRT falls as M grows (MIRT's fixed
        setup amortizes; JIGSAW has none to amortize)."""
        from repro.perfmodel.sweep import speedup_series

        cpu, asic = CpuMirtModel(), AsicJigsawModel()
        ms = np.asarray([1_000, 10_000, 100_000, 1_000_000])
        s = speedup_series(cpu, asic, 512, ms)
        assert np.all(s > 1)
        assert s[0] > s[-1]

    def test_end_to_end_series(self):
        from repro.perfmodel.sweep import speedup_series

        cpu, snd = CpuMirtModel(), GpuSliceDiceModel()
        s = speedup_series(cpu, snd, 512, np.asarray([50_000]), end_to_end=True)
        assert s.shape == (1,)
        assert s[0] > 10

    def test_crossover_solver(self):
        from repro.perfmodel.sweep import crossover_m

        # a: 10us launch + 1ns/sample; b: 0 + 2ns/sample -> crossover at 10k
        a = lambda m: 10e-6 + 1e-9 * m
        b = lambda m: 2e-9 * m
        assert crossover_m(a, b) == 10_000

    def test_crossover_none(self):
        from repro.perfmodel.sweep import crossover_m

        assert crossover_m(lambda m: 1.0, lambda m: 0.5, m_hi=1000) is None

    def test_crossover_immediate(self):
        from repro.perfmodel.sweep import crossover_m

        assert crossover_m(lambda m: 0.0, lambda m: 1.0) == 1

    def test_jigsaw_beats_gpus_from_m_equals_one(self):
        """No launch overhead: JIGSAW wins at every stream length
        against both calibrated GPU models."""
        from repro.perfmodel.sweep import jigsaw_crossover_m

        for model in (GpuSliceDiceModel(), GpuImpatientModel()):
            assert jigsaw_crossover_m(model, 512) is None

    def test_validation(self):
        from repro.perfmodel.sweep import crossover_m, speedup_series

        with pytest.raises(ValueError):
            speedup_series(CpuMirtModel(), AsicJigsawModel(), 512,
                           np.asarray([-1]))
        with pytest.raises(ValueError):
            crossover_m(lambda m: 0, lambda m: 0, m_lo=5, m_hi=1)
