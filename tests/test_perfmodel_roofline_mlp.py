"""Unit tests for the roofline and MLP analyses."""

import numpy as np
import pytest

from repro.gridding import GriddingStats
from repro.perfmodel import (
    I9_9900KS,
    TITAN_XP,
    MachineRoofline,
    distinct_lines_profile,
    gridding_roofline,
    stream_count,
)


class TestRoofline:
    def test_ridge(self):
        m = MachineRoofline("toy", peak_gflops=100.0, peak_bandwidth_gbs=50.0)
        assert m.ridge_intensity == pytest.approx(2.0)

    def test_attainable_clamped_by_compute(self):
        m = MachineRoofline("toy", 100.0, 50.0)
        assert m.attainable_gflops(10.0) == 100.0

    def test_attainable_bandwidth_bound(self):
        m = MachineRoofline("toy", 100.0, 50.0)
        assert m.attainable_gflops(0.5) == pytest.approx(25.0)

    def test_attainable_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            I9_9900KS.attainable_gflops(0.0)

    def test_gridding_is_memory_bound_at_high_miss_rate(self):
        """The §II claim: with near-random grid access, gridding sits
        far left of the ridge on both testbed machines."""
        stats = GriddingStats(
            interpolations=1_000_000, grid_accesses=1_000_000,
            samples_processed=30_000,
        )
        for machine in (I9_9900KS, TITAN_XP):
            pt = gridding_roofline(stats, miss_rate=0.9, machine=machine)
            assert pt.memory_bound

    def test_caching_moves_toward_compute_bound(self):
        stats = GriddingStats(
            interpolations=1_000_000, grid_accesses=1_000_000,
            samples_processed=30_000,
        )
        hot = gridding_roofline(stats, miss_rate=0.02, machine=TITAN_XP)
        cold = gridding_roofline(stats, miss_rate=0.9, machine=TITAN_XP)
        assert hot.intensity > 5 * cold.intensity
        assert hot.runtime_seconds < cold.runtime_seconds

    def test_runtime_positive(self):
        stats = GriddingStats(interpolations=100, grid_accesses=100,
                              samples_processed=10)
        assert gridding_roofline(stats, 0.5, I9_9900KS).runtime_seconds > 0

    def test_miss_rate_validated(self):
        stats = GriddingStats(interpolations=1, grid_accesses=1, samples_processed=1)
        with pytest.raises(ValueError):
            gridding_roofline(stats, 1.5, I9_9900KS)


class TestMlp:
    def test_sequential_trace_few_lines_per_window(self):
        trace = np.arange(640)  # 8 elements per 64B line
        counts = distinct_lines_profile(trace, window=64)
        assert counts.max() <= 9

    def test_random_trace_many_lines_per_window(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 1_000_000, 640)
        counts = distinct_lines_profile(trace, window=64)
        assert counts.min() > 50

    def test_short_trace(self):
        counts = distinct_lines_profile(np.asarray([1, 2, 3]), window=64)
        assert counts.shape == (1,)
        assert counts[0] == 1  # all in one line

    def test_window_validated(self):
        with pytest.raises(ValueError):
            distinct_lines_profile(np.arange(10), window=0)

    def test_stream_count_contiguous(self):
        assert stream_count(np.arange(100)) == 1

    def test_stream_count_two_streams(self):
        trace = np.concatenate([np.arange(50), 100_000 + np.arange(50)])
        assert stream_count(trace) == 2

    def test_stream_count_empty(self):
        assert stream_count(np.zeros(0, dtype=np.int64)) == 0

    def test_snd_working_set_bounded_naive_unbounded(self):
        """§III: the dice layout confines any stretch of the access
        stream to a handful of private column arrays (bounded working
        set -> misses resolvable in parallel without thrash), while the
        naive input-driven stream touches ever more distinct lines as
        the window grows (random grid access)."""
        from repro.core import SliceAndDiceGridder
        from repro.gridding import GriddingSetup, NaiveGridder
        from repro.kernels import KernelLUT, beatty_kernel

        rng = np.random.default_rng(1)
        g = 128
        setup = GriddingSetup((g, g), KernelLUT(beatty_kernel(6, 2.0), 32))
        coords = rng.uniform(0, g, (3000, 2))
        naive_trace = NaiveGridder(setup).address_trace(coords)
        snd = SliceAndDiceGridder(setup)
        snd_trace = snd.address_trace(coords)

        big = 256
        naive_lines = distinct_lines_profile(naive_trace, window=big).mean()
        snd_lines = distinct_lines_profile(snd_trace, window=big).mean()
        assert snd_lines < naive_lines
        # SnD window working set is bounded by ~2 column arrays
        per_column_lines = snd.layout.n_tiles * 8 / 64  # complex64 entries
        assert distinct_lines_profile(snd_trace, window=big).max() <= 2 * per_column_lines

        # naive keeps growing with the window; SnD saturates
        naive_small = distinct_lines_profile(naive_trace, window=64).mean()
        snd_small = distinct_lines_profile(snd_trace, window=64).mean()
        assert naive_lines / naive_small > 2.0
        assert snd_lines / snd_small < 2.0
