"""Unit tests for the phantom generators."""

import numpy as np
import pytest

from repro.phantoms import (
    liver_like_phantom,
    phantom_3d_stack,
    shepp_logan_2d,
    smooth_random_phantom,
)


class TestSheppLogan:
    def test_shape(self):
        assert shepp_logan_2d(64).shape == (64, 64)

    def test_value_range(self):
        img = shepp_logan_2d(128)
        assert img.min() >= -1e-12
        assert img.max() <= 1.0 + 1e-12

    def test_background_zero(self):
        img = shepp_logan_2d(128)
        assert img[0, 0] == 0.0
        assert img[-1, -1] == 0.0

    def test_skull_brighter_than_brain(self):
        img = shepp_logan_2d(256)
        # skull rim (outer ellipse only, top of head) vs interior gray
        assert img[10, 128] > img[128, 128]

    def test_left_right_ventricles_symmetric_in_intensity(self):
        img = shepp_logan_2d(256)
        # the two dark ventricles have equal intensity
        left = img[128, 96]
        right = img[128, 160]
        assert left == pytest.approx(right, abs=1e-12)

    def test_deterministic(self):
        np.testing.assert_array_equal(shepp_logan_2d(64), shepp_logan_2d(64))

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            shepp_logan_2d(0)

    @pytest.mark.parametrize("n", [16, 33, 100])
    def test_various_sizes(self, n):
        assert shepp_logan_2d(n).shape == (n, n)


class TestLiverLike:
    def test_shape_and_range(self):
        img = liver_like_phantom(96, rng=0)
        assert img.shape == (96, 96)
        assert img.min() >= 0.0 and img.max() == pytest.approx(1.0)

    def test_reproducible(self):
        np.testing.assert_array_equal(
            liver_like_phantom(64, rng=3), liver_like_phantom(64, rng=3)
        )

    def test_different_seeds_differ(self):
        a = liver_like_phantom(64, rng=0)
        b = liver_like_phantom(64, rng=1)
        assert np.any(a != b)

    def test_background_dark(self):
        img = liver_like_phantom(128, rng=0)
        assert img[0, 0] == 0.0

    def test_smooth_spectrum(self):
        """Soft-tissue stand-in must have faster spectral decay than the
        piecewise-constant Shepp-Logan."""
        n = 128
        def hf_fraction(img):
            spec = np.abs(np.fft.fftshift(np.fft.fft2(img)))
            c = n // 2
            r = np.hypot(*np.meshgrid(np.arange(n) - c, np.arange(n) - c))
            return spec[r > n / 4].sum() / spec.sum()

        assert hf_fraction(liver_like_phantom(n, rng=0)) < hf_fraction(
            shepp_logan_2d(n)
        )

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            liver_like_phantom(4)


class TestSmoothRandom:
    def test_range(self):
        img = smooth_random_phantom(64, rng=0)
        assert img.min() == pytest.approx(0.0)
        assert img.max() == pytest.approx(1.0)

    def test_smoothness_parameter(self):
        rough = smooth_random_phantom(64, smoothness=2, rng=0)
        smooth = smooth_random_phantom(64, smoothness=16, rng=0)
        assert np.mean(np.abs(np.diff(smooth, axis=0))) < np.mean(
            np.abs(np.diff(rough, axis=0))
        )

    def test_rejects_bad(self):
        with pytest.raises(ValueError):
            smooth_random_phantom(2)
        with pytest.raises(ValueError):
            smooth_random_phantom(64, smoothness=0)


class TestPhantom3D:
    def test_shape(self):
        vol = phantom_3d_stack(32, 8, rng=0)
        assert vol.shape == (8, 32, 32)

    def test_envelope_fades_at_ends(self):
        vol = phantom_3d_stack(32, 16, rng=0)
        assert vol[0].max() < vol[8].max()
        assert vol[-1].max() < vol[8].max()

    def test_rejects_bad_nz(self):
        with pytest.raises(ValueError):
            phantom_3d_stack(32, 0)
