"""True single-precision (complex64) lane: accuracy, dtypes, isolation.

The ``precision="single"`` lane must compute in complex64/float32 end
to end — gridding engines, buffer pool, FFT, apodization, CG — while
staying within the float32 error floor of the complex128 reference.
The legacy stepwise comparator lives on as ``"simulate-single"``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gridding import GriddingSetup, make_gridder
from repro.gridding.buffers import GridBufferPool
from repro.kernels import KernelLUT, beatty_kernel
from repro.nufft import NufftPlan
from repro.recon import cg_reconstruction
from repro.trajectories import (
    cell_counting_density_compensation,
    radial_trajectory,
    random_trajectory,
    spiral_trajectory,
)

ENGINES = [
    "naive",
    "output_parallel",
    "binning",
    "sparse_matrix",
    "slice_and_dice",
    "slice_and_dice_parallel",
    "slice_and_dice_compiled",
]

ENGINE_OPTIONS = {
    "slice_and_dice_parallel": {
        "workers": 2,
        "backend": "thread",
        "min_parallel_ops": 0,
    },
}

TRAJECTORIES_2D = [
    ("radial", radial_trajectory(16, 32)),
    ("spiral", spiral_trajectory(4, 64)),
    ("random", random_trajectory(128, 2, rng=7)),
]


def _plans(shape, coords, engine, **kwargs):
    opts = ENGINE_OPTIONS.get(engine)
    double = NufftPlan(
        shape, coords, gridder=engine, gridder_options=opts,
        fft_backend="numpy", **kwargs
    )
    single = NufftPlan(
        shape, coords, gridder=engine, gridder_options=opts,
        fft_backend="numpy", precision="single", **kwargs
    )
    return double, single


def _nrmsd(a, ref):
    return float(np.linalg.norm(a - ref) / np.linalg.norm(ref))


# ----------------------------------------------------------------------
class TestNrmsdAcrossEngines:
    """complex64 results track the complex128 reference on every engine."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "name,coords", TRAJECTORIES_2D, ids=[t[0] for t in TRAJECTORIES_2D]
    )
    def test_adjoint_forward_2d(self, engine, name, coords):
        double, single = _plans((32, 32), coords, engine)
        rng = np.random.default_rng(1)
        m = coords.shape[0]
        vals = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        a64 = double.adjoint(vals)
        a32 = single.adjoint(vals)
        assert a32.dtype == np.complex64
        assert _nrmsd(a32, a64) < 1e-4
        f64 = double.forward(a64)
        f32 = single.forward(a32)
        assert f32.dtype == np.complex64
        assert _nrmsd(f32, f64) < 1e-4

    @pytest.mark.parametrize(
        "engine", ["naive", "slice_and_dice", "slice_and_dice_compiled"]
    )
    def test_adjoint_3d(self, engine):
        coords = random_trajectory(256, 3, rng=5)
        double, single = _plans((16, 16, 16), coords, engine)
        rng = np.random.default_rng(2)
        vals = rng.standard_normal(256) + 1j * rng.standard_normal(256)
        a64 = double.adjoint(vals)
        a32 = single.adjoint(vals)
        assert a32.dtype == np.complex64
        assert _nrmsd(a32, a64) < 1e-4


class TestCgNrmsd:
    """CG reconstruction in the single lane tracks the double lane."""

    @pytest.mark.parametrize(
        "name,coords",
        [
            ("radial", radial_trajectory(96, 256)),
            ("spiral", spiral_trajectory(12, 768)),
        ],
    )
    def test_cg_256(self, name, coords):
        shape = (256, 256)
        rng = np.random.default_rng(11)
        phantom = np.zeros(shape, dtype=complex)
        phantom[64:192, 64:192] = 1.0
        phantom += 0.05 * (
            rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        )
        ref_plan = NufftPlan(shape, coords, gridder="slice_and_dice_compiled")
        kspace = ref_plan.forward(phantom)
        w = cell_counting_density_compensation(coords, shape)
        r64 = cg_reconstruction(
            ref_plan, kspace, weights=w, n_iterations=80, tolerance=1e-4
        )
        plan32 = NufftPlan(
            shape, coords, gridder="slice_and_dice_compiled", precision="single"
        )
        r32 = cg_reconstruction(
            plan32, kspace, weights=w, n_iterations=80, tolerance=1e-4
        )
        assert r32.image.dtype == np.complex64
        assert r64.converged and r32.converged
        assert _nrmsd(r32.image, r64.image) < 1e-3


# ----------------------------------------------------------------------
class TestAdjointnessFloat32:
    """<A x, y> == <x, A^H y> at float32 tolerances (hypothesis)."""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_dot_test(self, seed):
        coords = random_trajectory(64, 2, rng=123)
        plan = NufftPlan(
            (16, 16), coords, gridder="slice_and_dice", precision="single",
            fft_backend="numpy",
        )
        rng = np.random.default_rng(seed)
        x = (
            rng.standard_normal(plan.image_shape)
            + 1j * rng.standard_normal(plan.image_shape)
        ).astype(np.complex64)
        y = (
            rng.standard_normal(plan.n_samples)
            + 1j * rng.standard_normal(plan.n_samples)
        ).astype(np.complex64)
        lhs = np.vdot(plan.forward(x), y)
        rhs = np.vdot(x, plan.adjoint(y))
        scale = max(abs(lhs), abs(rhs), 1.0)
        assert abs(lhs - rhs) / scale < 1e-4


# ----------------------------------------------------------------------
class TestDtypeIsolation:
    """Caches, pools, and plans keep the two dtype lanes apart."""

    def test_pool_keys_by_dtype(self):
        pool = GridBufferPool()
        a = pool.acquire((8, 8), np.complex128)
        b = pool.acquire((8, 8), np.complex64)
        assert a.dtype == np.complex128 and b.dtype == np.complex64
        pool.release(a)
        pool.release(b)
        c = pool.acquire((8, 8), np.complex64)
        assert c is b  # same-dtype buffer reused, not the complex128 one

    def test_plans_do_not_cross_contaminate(self):
        coords = radial_trajectory(16, 32)
        p64 = NufftPlan((32, 32), coords, fft_backend="numpy")
        p32 = NufftPlan(
            (32, 32), coords, fft_backend="numpy", precision="single"
        )
        vals = np.ones(coords.shape[0], dtype=complex)
        for _ in range(2):  # warm both plans, interleaved
            a64 = p64.adjoint(vals)
            a32 = p32.adjoint(vals)
        assert a64.dtype == np.complex128
        assert a32.dtype == np.complex64
        keys64 = {key[1] for key in p64.buffer_pool._free}
        keys32 = {key[1] for key in p32.buffer_pool._free}
        assert keys64 <= {np.dtype(np.complex128).str}
        assert keys32 <= {np.dtype(np.complex64).str}

    def test_compiled_plan_csr_rebuilds_per_dtype(self):
        coords = radial_trajectory(16, 32)
        p32 = NufftPlan(
            (32, 32), coords, gridder="slice_and_dice_compiled",
            gridder_options={"backend": "csr"}, precision="single",
            fft_backend="numpy",
        )
        vals = np.ones(coords.shape[0], dtype=np.complex64)
        out = p32.adjoint(vals)
        assert out.dtype == np.complex64


class TestBatchedDtype:
    """Batched entry points preserve the working dtype."""

    @pytest.mark.parametrize("engine", ["slice_and_dice", "sparse_matrix"])
    def test_batched_roundtrip(self, engine):
        coords = radial_trajectory(16, 32)
        double, single = _plans((32, 32), coords, engine)
        rng = np.random.default_rng(4)
        m = coords.shape[0]
        vals = rng.standard_normal((3, m)) + 1j * rng.standard_normal((3, m))
        a64 = double.adjoint_batch(vals)
        a32 = single.adjoint_batch(vals)
        assert a32.dtype == np.complex64
        assert a32.shape == a64.shape
        assert _nrmsd(a32, a64) < 1e-4
        f32 = single.forward_batch(a32)
        assert f32.dtype == np.complex64
        assert _nrmsd(f32, double.forward_batch(a64)) < 1e-4


# ----------------------------------------------------------------------
class TestBufferPoolOwnership:
    """release() rejects foreign arrays and double releases."""

    def test_foreign_release_raises(self):
        pool = GridBufferPool()
        with pytest.raises(ValueError, match="not currently on loan"):
            pool.release(np.zeros((4, 4), dtype=np.complex128))

    def test_double_release_raises(self):
        pool = GridBufferPool()
        buf = pool.acquire((4, 4))
        pool.release(buf)
        with pytest.raises(ValueError, match="not currently on loan"):
            pool.release(buf)
        assert pool.outstanding == 0

    def test_release_from_other_pool_raises(self):
        a, b = GridBufferPool(), GridBufferPool()
        buf = a.acquire((4, 4))
        with pytest.raises(ValueError, match="not currently on loan"):
            b.release(buf)
        a.release(buf)  # the owning pool still accepts it


class TestCheckCoordsFastPath:
    """In-bounds coordinates pass through without a copy, per axis."""

    def test_rectangular_grid_identity(self):
        lut = KernelLUT(beatty_kernel(6, 2.0), 64)
        setup = GriddingSetup((16, 64), lut)
        rng = np.random.default_rng(0)
        # valid on the rectangular grid but would fail a scalar
        # min/max bound check against the smaller axis
        coords = np.column_stack(
            [rng.uniform(0, 16, 50), rng.uniform(32, 64, 50)]
        )
        out = setup.check_coords(coords)
        assert out is coords

    def test_out_of_bounds_takes_wrap_path(self):
        lut = KernelLUT(beatty_kernel(6, 2.0), 64)
        setup = GriddingSetup((16, 64), lut)
        bad = np.array([[8.0, 70.0]])  # beyond axis-1 extent
        out = setup.check_coords(bad)
        assert out is not bad  # slow path: torus wrap into a fresh array
        assert np.allclose(out, [[8.0, 6.0]])


class TestSetupDtypeValidation:
    """GriddingSetup dtype plumbing and out= validation."""

    def test_rejects_non_complex_dtype(self):
        lut = KernelLUT(beatty_kernel(6, 2.0), 64)
        with pytest.raises(ValueError, match="dtype"):
            GriddingSetup((16, 16), lut, dtype=np.float32)

    def test_real_dtype_property(self):
        lut = KernelLUT(beatty_kernel(6, 2.0), 64)
        assert GriddingSetup((16, 16), lut).real_dtype == np.float64
        assert (
            GriddingSetup((16, 16), lut, dtype=np.complex64).real_dtype
            == np.float32
        )

    def test_out_dtype_mismatch_message(self):
        lut = KernelLUT(beatty_kernel(6, 2.0), 64)
        setup = GriddingSetup((16, 16), lut, dtype=np.complex64)
        gridder = make_gridder("naive", setup)
        coords = np.full((4, 2), 8.0)
        vals = np.ones(4, dtype=np.complex64)
        wrong = np.zeros((16, 16), dtype=np.complex128)
        with pytest.raises(ValueError, match="complex64"):
            gridder.grid(coords, vals, out=wrong)
