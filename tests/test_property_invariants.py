"""Property-based tests on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import DiceLayout, decompose_coordinates, column_forward_distance, column_tile_index
from repro.fixedpoint import QFormat, RoundingMode, knuth_complex_multiply
from repro.jigsaw import JigsawConfig, z_bin_samples
from repro.perfmodel import CacheModel


class TestQFormatProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        int_bits=st.integers(1, 15),
        frac_bits=st.integers(0, 15),
        value=st.floats(-100, 100, allow_nan=False),
    )
    def test_quantize_error_bounded(self, int_bits, frac_bits, value):
        q = QFormat(int_bits, frac_bits)
        assume(q.min_value <= value <= q.max_value)
        back = q.dequantize(q.quantize(value))
        assert abs(back - value) <= q.quantization_error_bound() + 1e-12

    @settings(max_examples=100, deadline=None)
    @given(value=st.floats(-1000, 1000, allow_nan=False))
    def test_quantize_idempotent(self, value):
        q = QFormat(7, 8)
        once = q.quantize(value)
        twice = q.quantize(q.dequantize(once))
        assert once == twice

    @settings(max_examples=100, deadline=None)
    @given(
        a=st.integers(-30000, 30000),
        b=st.integers(-30000, 30000),
        c=st.integers(-30000, 30000),
        d=st.integers(-30000, 30000),
    )
    def test_knuth_matches_schoolbook_exactly(self, a, b, c, d):
        wide = QFormat(62, 0)
        re, im = knuth_complex_multiply(
            np.asarray([a]), np.asarray([b]), np.asarray([c]), np.asarray([d]),
            wide, 0,
        )
        z = complex(a, b) * complex(c, d)
        assert re[0] == z.real and im[0] == z.imag

    @settings(max_examples=50, deadline=None)
    @given(codes=st.lists(st.integers(-128, 127), min_size=1, max_size=20))
    def test_saturating_add_bounded(self, codes):
        q = QFormat(3, 4)
        acc = np.asarray([0])
        for c in codes:
            acc = q.add(acc, np.asarray([c]))
        assert q.min_code <= acc[0] <= q.max_code


class TestDecompositionProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        t=st.sampled_from([4, 8, 16]),
        w=st.integers(1, 4),
    )
    def test_reconstruction_identity(self, seed, t, w):
        """tile * T + rel + frac must reconstruct the shifted coordinate."""
        rng = np.random.default_rng(seed)
        g = 4 * t
        coords = rng.uniform(0, g, (20, 2))
        dec = decompose_coordinates(coords, (g, g), t, w)
        shifted = np.mod(coords + w / 2.0, g)
        rebuilt = dec.tile * t + dec.rel + dec.frac
        np.testing.assert_allclose(rebuilt, shifted, atol=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_each_sample_affects_exactly_w_squared_columns(self, seed):
        rng = np.random.default_rng(seed)
        g, t, w = 32, 8, 6
        coords = rng.uniform(0, g, (15, 2))
        dec = decompose_coordinates(coords, (g, g), t, w)
        hits = np.zeros(15, dtype=int)
        for px in range(t):
            for py in range(t):
                fwd = column_forward_distance(dec, (px, py))
                hits += np.all(fwd < w, axis=1)
        assert np.all(hits == w * w)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_tile_index_in_range(self, seed):
        rng = np.random.default_rng(seed)
        g, t, w = 32, 8, 6
        coords = rng.uniform(0, g, (15, 2))
        dec = decompose_coordinates(coords, (g, g), t, w)
        n_tiles = (g // t) ** 2
        for p in [(0, 0), (7, 3), (5, 5)]:
            idx = column_tile_index(dec, p)
            assert np.all((0 <= idx) & (idx < n_tiles))


class TestDiceLayoutProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        t=st.sampled_from([2, 4, 8]),
        mult=st.integers(2, 4),
    )
    def test_roundtrip_any_geometry(self, seed, t, mult):
        g = t * mult
        rng = np.random.default_rng(seed)
        lay = DiceLayout((g, g), t)
        grid = rng.standard_normal((g, g))
        np.testing.assert_array_equal(lay.dice_to_grid(lay.grid_to_dice(grid)), grid)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_transform_is_permutation(self, seed):
        """grid_to_dice must be a pure relabeling: multiset preserved."""
        rng = np.random.default_rng(seed)
        lay = DiceLayout((16, 16), 4)
        grid = rng.standard_normal((16, 16))
        dice = lay.grid_to_dice(grid)
        assert sorted(dice.ravel().tolist()) == sorted(grid.ravel().tolist())


class TestCacheProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 200))
    def test_misses_bounded_by_accesses(self, seed, n):
        rng = np.random.default_rng(seed)
        trace = rng.integers(0, 10_000, n)
        stats = CacheModel(4096, line_bytes=64, associativity=4).simulate(trace)
        assert 0 <= stats.misses <= stats.accesses == n

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_bigger_cache_never_worse_lru(self, seed):
        """LRU has the inclusion property: more capacity (same sets x
        more ways) cannot increase misses."""
        rng = np.random.default_rng(seed)
        trace = rng.integers(0, 2_000, 400)
        small = CacheModel(64 * 16 * 2, line_bytes=64, associativity=2)
        big = CacheModel(64 * 16 * 8, line_bytes=64, associativity=8)
        assert small.n_sets == big.n_sets  # same sets, more ways
        assert big.simulate(trace).misses <= small.simulate(trace).misses

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_repeating_trace_second_pass_no_worse(self, seed):
        rng = np.random.default_rng(seed)
        once = rng.integers(0, 40, 50)  # small working set
        cache = CacheModel(64 * 64, line_bytes=64, associativity=8)
        one = cache.simulate(once)
        two = CacheModel(64 * 64, line_bytes=64, associativity=8).simulate(
            np.concatenate([once, once])
        )
        assert two.misses <= one.misses + 1  # second pass hits (fits)


class TestZBinningProperties:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), wz=st.integers(1, 8))
    def test_entry_count_is_m_times_wz(self, seed, wz):
        cfg = JigsawConfig(
            grid_dim=16, grid_dim_z=8, window_width=4, window_width_z=wz,
            table_oversampling=16, variant="3d_slice",
        )
        rng = np.random.default_rng(seed)
        coords = rng.uniform(0, 8, (30, 3))
        zb = z_bin_samples(coords, cfg)
        assert zb.entries == 30 * wz
        assert sum(len(s) for s in zb.slice_samples) == 30 * wz
