"""Property tests over randomized problem geometry."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.jigsaw import JigsawConfig, JigsawSimulator
from repro.nufft import NufftPlan
from repro.trajectories import random_trajectory


class TestNufftRandomGeometry:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.sampled_from([8, 12, 16, 24]),
        w=st.sampled_from([2, 4, 6]),
        m=st.integers(1, 40),
        seed=st.integers(0, 2**31 - 1),
        gridder=st.sampled_from(["naive", "slice_and_dice", "sparse_matrix"]),
    )
    def test_adjointness_everywhere(self, n, w, m, seed, gridder):
        """<y, A x> == <A^H y, x> for every geometry and backend."""
        rng = np.random.default_rng(seed)
        coords = random_trajectory(m, 2, rng=seed)
        plan = NufftPlan((n, n), coords, width=w, table_oversampling=32,
                         gridder=gridder)
        x = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
        y = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        lhs = np.vdot(y, plan.forward(x))
        rhs = np.vdot(plan.adjoint(y), x)
        assert abs(lhs - rhs) <= 1e-9 * max(abs(lhs), 1.0)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.sampled_from([8, 16]),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_adjoint_of_conjugate_data_is_conjugate_reflection(self, n, seed):
        """A^H(conj(y)) at trajectory -w equals conj(A^H(y) at w):
        the conjugate-symmetry identity of the Fourier sums."""
        rng = np.random.default_rng(seed)
        coords = random_trajectory(25, 2, rng=seed + 1)
        y = rng.standard_normal(25) + 1j * rng.standard_normal(25)
        a = NufftPlan((n, n), coords, width=4, table_oversampling=512,
                      gridder="naive").adjoint(y)
        b = NufftPlan((n, n), -coords, width=4, table_oversampling=512,
                      gridder="naive").adjoint(np.conj(y))
        # holds exactly for the NuDFT; here to the NuFFT approximation
        # floor (the mirrored trajectory grids through different table
        # entries)
        err = np.linalg.norm(b - np.conj(a)) / np.linalg.norm(a)
        assert err < 5e-3

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_global_phase_ramp_shifts_image(self, seed):
        """Multiplying samples by exp(2 pi i w . s) circularly shifts
        the adjoint image by s pixels (Fourier shift theorem)."""
        rng = np.random.default_rng(seed)
        n = 16
        coords = random_trajectory(200, 2, rng=seed + 2)
        y = rng.standard_normal(200) + 1j * rng.standard_normal(200)
        plan = NufftPlan((n, n), coords, width=6, table_oversampling=512,
                         gridder="naive")
        base = plan.adjoint(y)
        shift = np.asarray([3, -2])
        ramp = np.exp(2j * np.pi * coords @ shift)
        moved = plan.adjoint(y * ramp)
        # image'[p] = image[p + s]; the adjoint image is NOT n-periodic
        # for non-integer frequencies, so compare only the interior
        # (rows/columns whose shifted source stays inside the FOV)
        expect = np.roll(base, -shift, axis=(0, 1))
        interior = (slice(3, n - 3), slice(3, n - 3))
        err = np.linalg.norm(moved[interior] - expect[interior]) / np.linalg.norm(
            expect[interior]
        )
        assert err < 5e-3  # NuFFT approximation floor


class TestJigsawCountExactness:
    @settings(max_examples=10, deadline=None)
    @given(m=st.integers(1, 300), seed=st.integers(0, 2**31 - 1))
    def test_access_counts(self, m, seed):
        """SRAM and MAC counts follow exactly from M and W."""
        cfg = JigsawConfig(grid_dim=32, window_width=6, table_oversampling=32)
        sim = JigsawSimulator(cfg)
        rng = np.random.default_rng(seed)
        coords = rng.uniform(0, 32, (m, 2))
        res = sim.grid_2d(coords, np.ones(m, dtype=complex))
        assert res.interpolations == m * 36
        assert res.weight_sram_reads == 2 * m * 36  # two axes per MAC
        assert res.accumulator_reads == m * 36
        assert res.cycles == m + 12

    def test_weight_sram_counter_integration(self):
        cfg = JigsawConfig(grid_dim=32, window_width=4, table_oversampling=16)
        sim = JigsawSimulator(cfg)
        before = sim.weight_sram.reads
        rng = np.random.default_rng(0)
        sim.grid_2d(rng.uniform(0, 32, (50, 2)), np.ones(50, dtype=complex))
        assert sim.weight_sram.reads - before == 2 * 50 * 16
