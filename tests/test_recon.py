"""Unit tests for metrics and reconstruction."""

import numpy as np
import pytest

from repro.nufft import NufftPlan
from repro.phantoms import shepp_logan_2d, liver_like_phantom
from repro.recon import (
    adjoint_reconstruction,
    cg_reconstruction,
    nrmsd,
    nrmsd_percent,
    psnr,
    rel_l2_error,
)
from repro.trajectories import golden_angle_radial, radial_trajectory


class TestMetrics:
    def test_nrmsd_zero_for_identical(self):
        img = shepp_logan_2d(32)
        assert nrmsd(img, img) == 0.0

    def test_nrmsd_known_value(self):
        ref = np.zeros((4, 4))
        ref[0, 0] = 1.0  # span = 1
        out = ref.copy()
        out[1, 1] = 0.4
        assert nrmsd(out, ref) == pytest.approx(0.1)

    def test_nrmsd_percent(self):
        ref = np.zeros((4, 4))
        ref[0, 0] = 1.0
        out = ref.copy()
        out[1, 1] = 0.4
        assert nrmsd_percent(out, ref) == pytest.approx(10.0)

    def test_nrmsd_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            nrmsd(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_nrmsd_flat_reference(self):
        with pytest.raises(ValueError, match="dynamic range"):
            nrmsd(np.ones((2, 2)), np.ones((2, 2)))

    def test_rel_l2(self):
        a = np.asarray([3.0, 4.0])
        assert rel_l2_error(a * 1.1, a) == pytest.approx(0.1)

    def test_rel_l2_zero_reference(self):
        with pytest.raises(ValueError, match="zero"):
            rel_l2_error(np.ones(3), np.zeros(3))

    def test_psnr_identical_infinite(self):
        img = shepp_logan_2d(16)
        assert psnr(img, img) == float("inf")

    def test_psnr_decreases_with_noise(self):
        rng = np.random.default_rng(0)
        img = shepp_logan_2d(32)
        small = psnr(img + 0.01 * rng.standard_normal(img.shape), img)
        large = psnr(img + 0.1 * rng.standard_normal(img.shape), img)
        assert small > large

    def test_psnr_magnitude_based(self):
        img = shepp_logan_2d(16) + 0.1
        assert psnr(img * np.exp(1j * 0.3), img) > 100  # phase ignored


@pytest.fixture(scope="module")
def radial_problem():
    n = 48
    phantom = liver_like_phantom(n, rng=0).astype(complex)
    coords = golden_angle_radial(int(n * 1.6), 2 * n)
    plan = NufftPlan((n, n), coords, width=6)
    kspace = plan.forward(phantom)
    return plan, phantom, kspace


class TestAdjointRecon:
    def test_recovers_structure(self, radial_problem):
        plan, phantom, kspace = radial_problem
        rec = adjoint_reconstruction(plan, kspace, density="pipe_menon")
        # normalize scale before comparing
        scale = np.vdot(rec, phantom) / np.vdot(rec, rec)
        assert rel_l2_error(rec * scale, phantom) < 0.35

    def test_ramp_close_to_pipe_menon_for_radial(self, radial_problem):
        plan, phantom, kspace = radial_problem
        a = adjoint_reconstruction(plan, kspace, density="ramp")
        b = adjoint_reconstruction(plan, kspace, density="pipe_menon")
        sa = np.vdot(a, phantom) / np.vdot(a, a)
        sb = np.vdot(b, phantom) / np.vdot(b, b)
        assert abs(
            rel_l2_error(a * sa, phantom) - rel_l2_error(b * sb, phantom)
        ) < 0.12

    def test_density_none_blurs_more(self, radial_problem):
        plan, phantom, kspace = radial_problem
        comp = adjoint_reconstruction(plan, kspace, density="ramp")
        blur = adjoint_reconstruction(plan, kspace, density="none")
        s1 = np.vdot(comp, phantom) / np.vdot(comp, comp)
        s2 = np.vdot(blur, phantom) / np.vdot(blur, blur)
        assert rel_l2_error(comp * s1, phantom) < rel_l2_error(blur * s2, phantom)

    def test_explicit_weights(self, radial_problem):
        plan, _, kspace = radial_problem
        w = np.ones(plan.n_samples)
        rec = adjoint_reconstruction(plan, kspace, density=w)
        ref = adjoint_reconstruction(plan, kspace, density="none")
        np.testing.assert_allclose(rec, ref, rtol=1e-10)

    def test_bad_density_name(self, radial_problem):
        plan, _, kspace = radial_problem
        with pytest.raises(ValueError, match="density"):
            adjoint_reconstruction(plan, kspace, density="voronoi")

    def test_kspace_count_mismatch(self, radial_problem):
        plan, _, _ = radial_problem
        with pytest.raises(ValueError, match="k-space"):
            adjoint_reconstruction(plan, np.zeros(3, dtype=complex))

    def test_weight_count_mismatch(self, radial_problem):
        plan, _, kspace = radial_problem
        with pytest.raises(ValueError, match="weights"):
            adjoint_reconstruction(plan, kspace, density=np.ones(3))


class TestCgRecon:
    def test_beats_adjoint(self, radial_problem):
        plan, phantom, kspace = radial_problem
        adj = adjoint_reconstruction(plan, kspace, density="ramp")
        s = np.vdot(adj, phantom) / np.vdot(adj, adj)
        cg = cg_reconstruction(plan, kspace, n_iterations=15)
        assert rel_l2_error(cg.image, phantom) < rel_l2_error(adj * s, phantom)

    def test_residuals_decrease(self, radial_problem):
        plan, _, kspace = radial_problem
        res = cg_reconstruction(plan, kspace, n_iterations=8)
        r = res.residual_norms
        assert r[-1] < r[0]
        assert res.n_iterations == 8 or res.converged

    def test_toeplitz_matches_direct(self, radial_problem):
        plan, _, kspace = radial_problem
        direct = cg_reconstruction(plan, kspace, n_iterations=6)
        fast = cg_reconstruction(plan, kspace, n_iterations=6, toeplitz=True)
        assert rel_l2_error(fast.image, direct.image) < 0.02

    def test_regularization_shrinks_solution(self, radial_problem):
        plan, _, kspace = radial_problem
        free = cg_reconstruction(plan, kspace, n_iterations=8)
        reg = cg_reconstruction(plan, kspace, n_iterations=8,
                                regularization=plan.n_samples * 10.0)
        assert np.linalg.norm(reg.image) < np.linalg.norm(free.image)

    def test_weighted_cg_converges_faster(self, radial_problem):
        """Density weights precondition the radial normal equations."""
        plan, phantom, kspace = radial_problem
        from repro.trajectories import ramp_density_compensation

        w = ramp_density_compensation(plan.coords)
        plain = cg_reconstruction(plan, kspace, n_iterations=4)
        weighted = cg_reconstruction(plan, kspace, weights=w, n_iterations=4)
        assert rel_l2_error(weighted.image, phantom) < rel_l2_error(
            plain.image, phantom
        )

    def test_zero_data_returns_zero(self, radial_problem):
        plan, _, _ = radial_problem
        res = cg_reconstruction(plan, np.zeros(plan.n_samples, dtype=complex))
        assert res.converged
        assert np.all(res.image == 0)

    def test_batched_matches_per_rhs(self, radial_problem):
        """Stacked (K, M) right-hand sides iterate in lock step through
        the batched NuFFT path and match K independent solves."""
        plan, _, kspace = radial_problem
        rng = np.random.default_rng(3)
        stack = np.stack(
            [kspace, 0.5 * kspace,
             kspace + 0.01 * (rng.standard_normal(kspace.shape)
                              + 1j * rng.standard_normal(kspace.shape))]
        )
        batched = cg_reconstruction(plan, stack, n_iterations=6)
        assert batched.image.shape == (3,) + plan.image_shape
        for k in range(3):
            single = cg_reconstruction(plan, stack[k], n_iterations=6)
            np.testing.assert_allclose(
                batched.image[k], single.image, rtol=1e-8, atol=1e-12
            )

    def test_batched_zero_rhs_frozen(self, radial_problem):
        """An all-zero RHS in the stack stays exactly zero while the
        other systems iterate."""
        plan, _, kspace = radial_problem
        stack = np.stack([kspace, np.zeros_like(kspace)])
        res = cg_reconstruction(plan, stack, n_iterations=4)
        assert np.all(res.image[1] == 0)
        assert np.any(res.image[0] != 0)

    def test_validation(self, radial_problem):
        plan, _, kspace = radial_problem
        with pytest.raises(ValueError, match="n_iterations"):
            cg_reconstruction(plan, kspace, n_iterations=0)
        with pytest.raises(ValueError, match="tolerance"):
            cg_reconstruction(plan, kspace, tolerance=0)
        with pytest.raises(ValueError, match="regularization"):
            cg_reconstruction(plan, kspace, regularization=-1)
        with pytest.raises(ValueError, match="nonnegative"):
            cg_reconstruction(plan, kspace, weights=-np.ones(plan.n_samples))
        with pytest.raises(ValueError, match="samples"):
            cg_reconstruction(plan, np.zeros(3, dtype=complex))
