"""Toeplitz normal operator: equivalence, Hermitian-PSD, CG agreement.

Two accuracy regimes are tested deliberately:

- ``psf="nudft"`` builds the kernel from the *exact* discrete sum, so
  the Toeplitz operator IS the NuDFT Gram ``A^H W A`` up to FFT
  roundoff — equivalence is asserted at ``rtol=1e-6`` (it holds to
  ~1e-12) against the explicit NuDFT normal operator, across
  trajectory families and dimensions.
- ``psf="nufft"`` (the production default) matches the explicit NuFFT
  Gram only to the plan's own approximation error (table-limited,
  ~1e-3 relative at default settings); those tests use tolerances tied
  to the plan accuracy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mri import SenseOperator, birdcage_maps, sense_reconstruction
from repro.nudft import NudftOperator
from repro.nufft import NufftPlan, ToeplitzGram, ToeplitzNormalOperator
from repro.recon import cg_reconstruction
from repro.trajectories import (
    radial_trajectory,
    random_trajectory,
    spiral_trajectory,
)

try:
    from hypothesis import given, settings, strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


def _rand_image(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=shape) + 1j * rng.normal(size=shape)


TRAJECTORIES = [
    ("radial-2d", radial_trajectory(16, 32), (16, 16)),
    ("spiral-2d", spiral_trajectory(3, 240), (16, 16)),
    ("random-2d", random_trajectory(300, 2, rng=7), (16, 16)),
    ("random-3d", random_trajectory(200, 3, rng=8), (8, 8, 8)),
]


class TestExactEquivalence:
    """psf="nudft": the operator equals the explicit NuDFT Gram."""

    @pytest.mark.parametrize(
        "label,coords,shape", TRAJECTORIES, ids=[t[0] for t in TRAJECTORIES]
    )
    def test_matches_explicit_normal(self, label, coords, shape):
        plan = NufftPlan(shape, coords)
        rng = np.random.default_rng(1)
        w = 0.5 + rng.random(coords.shape[0])
        gram = ToeplitzNormalOperator(plan, weights=w, psf="nudft")
        oracle = NudftOperator(coords, shape)
        x = _rand_image(shape, seed=2)
        explicit = oracle.adjoint(w * oracle.forward(x))
        result = gram.apply(x)
        scale = np.max(np.abs(explicit))
        np.testing.assert_allclose(
            result, explicit, rtol=1e-6, atol=1e-9 * scale
        )

    def test_unweighted_defaults_to_ones(self):
        coords = radial_trajectory(12, 24)
        plan = NufftPlan((16, 16), coords)
        gram = ToeplitzNormalOperator(plan, psf="nudft")
        oracle = NudftOperator(coords, (16, 16))
        x = _rand_image((16, 16), seed=3)
        explicit = oracle.adjoint(oracle.forward(x))
        scale = np.max(np.abs(explicit))
        np.testing.assert_allclose(
            gram.apply(x), explicit, rtol=1e-6, atol=1e-9 * scale
        )

    def test_batched_matches_loop(self):
        coords = random_trajectory(250, 2, rng=9)
        plan = NufftPlan((16, 16), coords)
        gram = ToeplitzNormalOperator(plan, psf="nudft")
        stack = np.stack([_rand_image((16, 16), seed=s) for s in range(4)])
        batched = gram.apply_batch(stack)
        assert batched.shape == stack.shape
        for k in range(4):
            np.testing.assert_allclose(
                batched[k], gram.apply(stack[k]), rtol=1e-10, atol=1e-12
            )

    def test_stacked_input_routes_to_batch(self):
        coords = radial_trajectory(8, 16)
        plan = NufftPlan((16, 16), coords)
        gram = ToeplitzNormalOperator(plan, psf="nudft")
        stack = np.stack([_rand_image((16, 16), seed=5)] * 2)
        assert gram.apply(stack).shape == stack.shape


class TestNufftPsfConsistency:
    """psf="nufft": agreement with the explicit NuFFT Gram at plan accuracy."""

    @pytest.mark.parametrize(
        "label,coords,shape", TRAJECTORIES, ids=[t[0] for t in TRAJECTORIES]
    )
    def test_close_to_explicit_gram(self, label, coords, shape):
        plan = NufftPlan(shape, coords)
        rng = np.random.default_rng(4)
        w = 0.5 + rng.random(coords.shape[0])
        gram = ToeplitzNormalOperator(plan, weights=w)
        x = _rand_image(shape, seed=6)
        explicit = plan.adjoint(w * plan.forward(x))
        scale = np.max(np.abs(explicit))
        # both sides carry the plan's independent O(1e-3) table-limited
        # approximation error; the bound is a regression guard
        np.testing.assert_allclose(
            gram.apply(x), explicit, atol=5e-3 * scale
        )

    def test_accuracy_improves_with_table_oversampling(self):
        coords = radial_trajectory(16, 32)
        x = _rand_image((16, 16), seed=7)
        errs = []
        for table in (512, 8192):
            plan = NufftPlan((16, 16), coords, table_oversampling=table)
            gram = ToeplitzNormalOperator(plan)
            explicit = plan.adjoint(plan.forward(x))
            errs.append(np.max(np.abs(gram.apply(x) - explicit)))
        assert errs[1] < errs[0]

    def test_backcompat_alias(self):
        assert ToeplitzGram is ToeplitzNormalOperator

    def test_rejects_bad_psf_and_shapes(self):
        coords = radial_trajectory(8, 16)
        plan = NufftPlan((16, 16), coords)
        with pytest.raises(ValueError, match="psf"):
            ToeplitzNormalOperator(plan, psf="magic")
        with pytest.raises(ValueError, match="weights"):
            ToeplitzNormalOperator(plan, weights=np.ones(3))
        gram = ToeplitzNormalOperator(plan)
        with pytest.raises(ValueError, match="image shape"):
            gram.apply(np.ones((8, 8), dtype=complex))


class TestHermitianPsd:
    def test_exactly_hermitian_by_construction(self):
        coords = random_trajectory(200, 2, rng=11)
        plan = NufftPlan((16, 16), coords)
        gram = ToeplitzNormalOperator(plan)
        x = _rand_image((16, 16), seed=8)
        y = _rand_image((16, 16), seed=9)
        lhs = np.vdot(y, gram.apply(x))
        rhs = np.vdot(gram.apply(y), x)
        assert abs(lhs - rhs) <= 1e-10 * abs(lhs)

    def test_kernel_spectrum_is_real_when_hermitian(self):
        coords = radial_trajectory(8, 16)
        plan = NufftPlan((16, 16), coords)
        gram = ToeplitzNormalOperator(plan, hermitian=True)
        assert not np.iscomplexobj(gram._kernel_fft)

    if HAVE_HYPOTHESIS:

        @settings(max_examples=20, deadline=None)
        @given(
            seed=st.integers(min_value=0, max_value=10_000),
            m=st.integers(min_value=5, max_value=40),
        )
        def test_quadratic_form_nonnegative(self, seed, m):
            # with the exact PSF the operator is the NuDFT Gram
            # A^H W A: Hermitian PSD, so x^H T x is real and >= 0
            rng = np.random.default_rng(seed)
            coords = rng.uniform(-0.5, 0.5, size=(m, 2))
            w = rng.random(m)  # nonnegative weights
            plan = NufftPlan((8, 8), coords)
            gram = ToeplitzNormalOperator(plan, weights=w, psf="nudft")
            x = rng.normal(size=(8, 8)) + 1j * rng.normal(size=(8, 8))
            tx = gram.apply(x)
            quad = np.vdot(x, tx)
            scale = max(np.vdot(x, x).real * m, 1.0)
            assert abs(quad.imag) <= 1e-9 * scale
            assert quad.real >= -1e-9 * scale


class TestCgIntegration:
    def test_normal_kwarg_validation(self):
        coords = radial_trajectory(8, 16)
        plan = NufftPlan((16, 16), coords)
        v = np.ones(coords.shape[0], dtype=complex)
        with pytest.raises(ValueError, match="normal"):
            cg_reconstruction(plan, v, normal="magic")
        with pytest.raises(ValueError, match="conflicts"):
            cg_reconstruction(plan, v, normal="gridding", toeplitz=True)

    def test_toeplitz_bool_backcompat(self):
        coords = radial_trajectory(12, 24)
        plan = NufftPlan((16, 16), coords)
        kspace = plan.forward(_rand_image((16, 16), seed=10))
        old = cg_reconstruction(plan, kspace, n_iterations=5, toeplitz=True)
        new = cg_reconstruction(plan, kspace, n_iterations=5, normal="toeplitz")
        np.testing.assert_allclose(old.image, new.image, rtol=1e-12, atol=1e-12)

    def test_cg_images_agree_across_normal_operators(self):
        # high-accuracy plan so the two normal operators differ by much
        # less than the reconstruction scale
        coords = radial_trajectory(24, 48)
        plan = NufftPlan((32, 32), coords, table_oversampling=8192)
        truth = _rand_image((32, 32), seed=11)
        kspace = plan.forward(truth)
        w = np.ones(coords.shape[0])
        grid = cg_reconstruction(plan, kspace, w, n_iterations=12, tolerance=1e-12)
        toep = cg_reconstruction(
            plan, kspace, w, n_iterations=12, tolerance=1e-12, normal="toeplitz"
        )
        scale = np.max(np.abs(grid.image))
        assert np.max(np.abs(grid.image - toep.image)) <= 2e-3 * scale

    def test_cg_toeplitz_converges(self):
        coords = radial_trajectory(16, 32)
        plan = NufftPlan((16, 16), coords)
        kspace = plan.forward(_rand_image((16, 16), seed=12))
        result = cg_reconstruction(plan, kspace, n_iterations=30, normal="toeplitz")
        assert result.residual_norms[-1] < result.residual_norms[0]

    def test_batched_cg_toeplitz_matches_single(self):
        coords = radial_trajectory(12, 24)
        plan = NufftPlan((16, 16), coords)
        k1 = plan.forward(_rand_image((16, 16), seed=13))
        k2 = plan.forward(_rand_image((16, 16), seed=14))
        stacked = cg_reconstruction(
            plan, np.stack([k1, k2]), n_iterations=6, normal="toeplitz"
        )
        for k, kspace in enumerate((k1, k2)):
            single = cg_reconstruction(
                plan, kspace, n_iterations=6, normal="toeplitz"
            )
            np.testing.assert_allclose(
                stacked.image[k], single.image, rtol=1e-8, atol=1e-10
            )

    def test_normal_options_exact_psf(self):
        coords = radial_trajectory(12, 24)
        plan = NufftPlan((16, 16), coords)
        kspace = plan.forward(_rand_image((16, 16), seed=15))
        result = cg_reconstruction(
            plan,
            kspace,
            n_iterations=5,
            normal="toeplitz",
            normal_options={"psf": "nudft"},
        )
        assert result.image.shape == (16, 16)


class TestSenseToeplitz:
    def test_normal_methods_agree(self):
        coords = radial_trajectory(16, 32)
        plan = NufftPlan((16, 16), coords, table_oversampling=8192)
        op = SenseOperator(plan, birdcage_maps(4, 16))
        x = _rand_image((16, 16), seed=16)
        w = np.ones(coords.shape[0])
        grid = op.normal(x, weights=w, method="gridding")
        toep = op.normal(x, weights=w, method="toeplitz")
        scale = np.max(np.abs(grid))
        assert np.max(np.abs(grid - toep)) <= 1e-3 * scale

    def test_method_validation(self):
        coords = radial_trajectory(8, 16)
        plan = NufftPlan((16, 16), coords)
        op = SenseOperator(plan, birdcage_maps(2, 16))
        with pytest.raises(ValueError, match="method"):
            op.normal(_rand_image((16, 16)), method="magic")

    def test_toeplitz_operator_cached_per_weights(self):
        coords = radial_trajectory(8, 16)
        plan = NufftPlan((16, 16), coords)
        op = SenseOperator(plan, birdcage_maps(2, 16))
        x = _rand_image((16, 16), seed=17)
        w = np.ones(coords.shape[0])
        op.normal(x, weights=w, method="toeplitz")
        first = op._toeplitz_cache[1]
        op.normal(2 * x, weights=w, method="toeplitz")
        assert op._toeplitz_cache[1] is first
        op.normal(x, weights=2 * w, method="toeplitz")
        assert op._toeplitz_cache[1] is not first

    def test_sense_reconstruction_toeplitz(self):
        coords = radial_trajectory(16, 32)
        plan = NufftPlan((16, 16), coords, table_oversampling=8192)
        maps = birdcage_maps(4, 16)
        op = SenseOperator(plan, maps)
        truth = _rand_image((16, 16), seed=18)
        kspace = op.forward(truth)
        grid = sense_reconstruction(op, kspace, n_iterations=8)
        toep = sense_reconstruction(op, kspace, n_iterations=8, normal="toeplitz")
        scale = np.max(np.abs(grid.image))
        assert np.max(np.abs(grid.image - toep.image)) <= 2e-3 * scale
        with pytest.raises(ValueError, match="normal"):
            sense_reconstruction(op, kspace, normal="magic")
