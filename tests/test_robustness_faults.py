"""Chaos suite: the fault-tolerant execution layer under injected faults.

Every test drives a *production* entry point (gridding, NuFFT, CG)
through :func:`repro.robustness.inject_faults` and asserts the two
tentpole contracts:

1. every injected fault either surfaces as a typed
   :class:`repro.errors.ReproError` subclass (``policy="raise"``) or
   completes through a *recorded* degradation whose result is
   bit-identical to the unfaulted serial/numpy reference, and
2. no fault path leaks pooled buffers (``GridBufferPool.outstanding``
   returns to 0) or returns NaN in an image/grid.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    BackendFailure,
    CoordinateError,
    DataQualityError,
    DegradationEvent,
    EngineFailure,
    ReproError,
    SolverBreakdown,
)
from repro.gridding import GriddingSetup, make_gridder
from repro.gridding.buffers import GridBufferPool
from repro.kernels import KernelLUT, beatty_kernel
from repro.nufft import (
    FallbackFftBackend,
    NufftPlan,
    ToeplitzNormalOperator,
    fft_backend_available,
)
from repro.recon import cg_reconstruction
from repro.robustness import (
    DataQualityReport,
    apply_quality_policy,
    inject_faults,
)
from repro.robustness.faults import InjectedFault, InjectedWorkerCrash
from repro.core import parallel as parallel_mod
from repro.trajectories import radial_trajectory

needs_processes = pytest.mark.skipif(
    not parallel_mod._processes_available(),
    reason="fork + shared_memory not available on this platform",
)

#: every registered engine, with options forcing the parallel pool on
ENGINES = [
    ("naive", {}),
    ("output_parallel", {}),
    ("binning", {}),
    ("sparse_matrix", {}),
    ("slice_and_dice", {}),
    ("slice_and_dice_compiled", {}),
    (
        "slice_and_dice_parallel",
        {"workers": 2, "backend": "thread", "min_parallel_ops": 0},
    ),
]


def build_setup(shape=(16, 16), policy="raise"):
    return GriddingSetup(
        tuple(shape), KernelLUT(beatty_kernel(4, 2.0), 32), quality_policy=policy
    )


def dirty_samples(rng, m=60, shape=(16, 16)):
    """(coords, values, bad_mask) with NaN/Inf at known sample slots."""
    coords = rng.uniform(0, min(shape), size=(m, len(shape)))
    values = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    bad = np.zeros(m, dtype=bool)
    coords[3, 0] = np.nan
    coords[17, 1] = np.inf
    values[5] = np.nan + 0j
    values[11] = 1.0 + np.inf * 1j
    bad[[3, 5, 11, 17]] = True
    return coords, values, bad


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


# ---------------------------------------------------------------------------
# exception taxonomy
# ---------------------------------------------------------------------------
class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(CoordinateError, ReproError)
        assert issubclass(CoordinateError, ValueError)
        assert issubclass(DataQualityError, ReproError)
        assert issubclass(DataQualityError, ValueError)
        for exc in (EngineFailure, BackendFailure, SolverBreakdown):
            assert issubclass(exc, ReproError)
            assert issubclass(exc, RuntimeError)

    def test_injected_faults_are_not_repro_errors(self):
        # they simulate third-party failures the stack must translate
        assert issubclass(InjectedWorkerCrash, InjectedFault)
        assert not issubclass(InjectedFault, ReproError)

    def test_degradation_event_str(self):
        e = DegradationEvent("parallel", "process", "thread", "shm full")
        assert str(e) == "parallel: process -> thread (shm full)"


# ---------------------------------------------------------------------------
# input-quality gate: check_coords and policies across every engine
# ---------------------------------------------------------------------------
class TestQualityGate:
    def test_check_coords_raises_typed_error(self):
        setup = build_setup(policy="raise")
        coords = np.array([[1.0, 2.0], [np.nan, 3.0]])
        with pytest.raises(CoordinateError, match="non-finite"):
            setup.check_coords(coords)

    def test_check_coords_zero_policy_pins_to_origin(self):
        setup = build_setup(policy="zero")
        coords = np.array([[1.0, 2.0], [np.nan, np.inf]])
        wrapped = setup.check_coords(coords)
        assert np.array_equal(wrapped[1], [0.0, 0.0])
        assert np.isfinite(wrapped).all()

    @pytest.mark.parametrize("name,opts", ENGINES)
    def test_raise_policy_is_typed(self, rng, name, opts):
        gridder = make_gridder(name, build_setup(policy="raise"), **opts)
        coords, values, _ = dirty_samples(rng)
        with pytest.raises((CoordinateError, DataQualityError)):
            gridder.grid(coords, values)
        finite_coords = coords.copy()
        finite_coords[~np.isfinite(coords).any(axis=1)] = 1.0
        finite_coords[3] = finite_coords[17] = 1.0
        with pytest.raises(DataQualityError):
            gridder.grid(finite_coords, values)

    @pytest.mark.parametrize("name,opts", ENGINES)
    def test_drop_policy_bit_identical_to_filtered(self, rng, name, opts):
        coords, values, bad = dirty_samples(rng)
        gridder = make_gridder(name, build_setup(policy="drop"), **opts)
        out = gridder.grid(coords, values)
        report = gridder.stats.quality
        assert report is not None and report.dropped == int(bad.sum())
        clean = make_gridder(name, build_setup(policy="raise"), **opts)
        ref = clean.grid(coords[~bad], values[~bad])
        assert np.array_equal(out, ref)
        assert np.isfinite(out).all()

    @pytest.mark.parametrize("name,opts", ENGINES)
    def test_zero_policy_matches_filtered(self, rng, name, opts):
        coords, values, bad = dirty_samples(rng)
        gridder = make_gridder(name, build_setup(policy="zero"), **opts)
        out = gridder.grid(coords, values)
        assert gridder.stats.quality.zeroed == int(bad.sum())
        # zeroed samples sit at the origin with value 0 and contribute
        # nothing; the extra zero sample can still reorder the engine's
        # accumulation, so compare at summation-roundoff tolerance
        clean = make_gridder(name, build_setup(policy="raise"), **opts)
        ref = clean.grid(coords[~bad], values[~bad])
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-12)
        assert np.isfinite(out).all()

    @pytest.mark.parametrize("name,opts", ENGINES)
    @pytest.mark.parametrize("policy", ["drop", "zero"])
    def test_interp_zeroes_bad_slots(self, rng, name, opts, policy):
        coords, _, _ = dirty_samples(rng)
        # interp has no sample values, so only coordinate defects matter
        bad = ~np.isfinite(coords).all(axis=1)
        grid = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
        gridder = make_gridder(name, build_setup(policy=policy), **opts)
        vals = gridder.interp(grid, coords)
        assert vals.shape == (coords.shape[0],)
        assert np.all(vals[bad] == 0)
        clean = make_gridder(name, build_setup(policy="raise"), **opts)
        ref = clean.interp(grid, coords[~bad])
        assert np.array_equal(vals[~bad], ref)

    def test_grid_batch_reports_quality(self, rng):
        coords, values, bad = dirty_samples(rng)
        with np.errstate(invalid="ignore"):
            stack = np.stack([values, 2 * values])
        gridder = make_gridder("slice_and_dice", build_setup(policy="drop"))
        out = gridder.grid_batch(coords, stack)
        assert out.shape == (2, 16, 16)
        assert np.isfinite(out).all()
        assert gridder.stats.quality.dropped == int(bad.sum())
        assert "quality" in gridder.stats.as_dict()


# ---------------------------------------------------------------------------
# validators never mutate clean inputs (hypothesis property)
# ---------------------------------------------------------------------------
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


class TestCleanPassthrough:
    @given(
        data=st.data(),
        m=st.integers(min_value=0, max_value=40),
        policy=st.sampled_from(["raise", "drop", "zero"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_gate_is_identity_on_clean_input(self, data, m, policy):
        seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
        rng = np.random.default_rng(seed)
        coords = rng.uniform(0, 16, size=(m, 2))
        values = (rng.standard_normal(m) + 1j * rng.standard_normal(m))[None, :]
        c_bytes, v_bytes = coords.tobytes(), values.tobytes()
        c2, v2, bad, report = apply_quality_policy(coords, values, policy, (16, 16))
        assert c2 is coords and v2 is values and bad is None
        assert report.clean
        # bit-identity: the gate did not touch the buffers
        assert coords.tobytes() == c_bytes and values.tobytes() == v_bytes

    @given(policy=st.sampled_from(["raise", "drop", "zero"]))
    @settings(max_examples=3, deadline=None)
    def test_policies_agree_on_clean_input(self, policy):
        rng = np.random.default_rng(7)
        coords = rng.uniform(0, 16, size=(50, 2))
        values = rng.standard_normal(50) + 1j * rng.standard_normal(50)
        ref = make_gridder("slice_and_dice", build_setup(policy="raise")).grid(
            coords, values
        )
        out = make_gridder("slice_and_dice", build_setup(policy=policy)).grid(
            coords, values
        )
        assert np.array_equal(out, ref)


# ---------------------------------------------------------------------------
# corrupted-stream injection
# ---------------------------------------------------------------------------
class TestCorruptedStream:
    def test_raise_policy_surfaces_typed_error(self, rng):
        gridder = make_gridder("slice_and_dice", build_setup(policy="raise"))
        coords = rng.uniform(0, 16, size=(40, 2))
        values = rng.standard_normal(40) + 0j
        with inject_faults(seed=5, corrupt_coords=2):
            with pytest.raises(CoordinateError):
                gridder.grid(coords, values)

    def test_engines_agree_under_identical_corruption(self, rng):
        coords = rng.uniform(0, 16, size=(80, 2))
        values = rng.standard_normal(80) + 1j * rng.standard_normal(80)
        results = []
        for name, opts in ENGINES:
            gridder = make_gridder(name, build_setup(policy="zero"), **opts)
            with inject_faults(seed=5, corrupt_coords=3, corrupt_values=2) as inj:
                out = gridder.grid(coords, values)
                assert inj.log  # corruption actually fired
            assert np.isfinite(out).all()
            assert gridder.stats.quality is not None
            assert not gridder.stats.quality.clean
            results.append(out)
        # every engine saw the same seeded corruption; engines differ
        # only in accumulation order, so agree to summation roundoff
        for out in results[1:]:
            np.testing.assert_allclose(out, results[0], rtol=1e-12, atol=1e-12)

    def test_originals_never_mutated(self, rng):
        coords = rng.uniform(0, 16, size=(30, 2))
        values = rng.standard_normal(30) + 0j
        c_bytes, v_bytes = coords.tobytes(), values.tobytes()
        gridder = make_gridder("naive", build_setup(policy="zero"))
        with inject_faults(seed=0, corrupt_coords=4, corrupt_values=4):
            gridder.grid(coords, values)
        assert coords.tobytes() == c_bytes and values.tobytes() == v_bytes

    def test_corrupt_chunk_index_poisons_exactly_one_chunk(self, rng):
        """The chunk-targeted injector fires once, on the named chunk
        only, and poisons every sample of that chunk (chunk-granular
        failure model: a bad DMA burst, not a bad sample)."""
        from repro.robustness.faults import corrupt_chunk

        coords = rng.uniform(0, 16, size=(12, 2))
        values = rng.standard_normal((1, 12)) + 0j
        with inject_faults(seed=0, corrupt_chunk_index=1) as inj:
            c0, v0 = corrupt_chunk(0, coords.copy(), values.copy())
            assert np.isfinite(c0).all() and np.isfinite(v0).all()
            c1, v1 = corrupt_chunk(1, coords.copy(), values.copy())
            assert not np.isfinite(c1).all()
            assert not np.isfinite(v1).all()
            # one-shot: the directive clears after firing
            c2, v2 = corrupt_chunk(1, coords.copy(), values.copy())
            assert np.isfinite(c2).all() and np.isfinite(v2).all()
            assert any(
                site == "corrupt" and "chunk" in detail
                for site, detail in inj.log
            )

    def test_corrupt_chunk_streaming_raise_leaves_no_partial_output(self, rng):
        """A mid-stream poisoned chunk under policy="raise" aborts the
        whole pass: typed error, no partial accumulation visible, and
        the engine stays healthy for the next call."""
        from repro.gridding import SampleStream

        coords = rng.uniform(0, 16, size=(100, 2))
        values = rng.standard_normal(100) + 1j * rng.standard_normal(100)
        gridder = make_gridder(
            "slice_and_dice_streaming",
            build_setup(policy="raise"),
            chunk_samples=25,
        )

        def stream():
            return SampleStream.from_arrays(coords, values, chunk_samples=25)

        ref = gridder.grid_stream(stream())
        with inject_faults(seed=0, corrupt_chunk_index=2):
            with pytest.raises(CoordinateError):
                gridder.grid_stream(stream())
        assert np.array_equal(gridder.grid_stream(stream()), ref)


# ---------------------------------------------------------------------------
# supervised parallel-engine ladder
# ---------------------------------------------------------------------------
class TestParallelLadder:
    def _pair(self, shape=(32, 32), **kw):
        setup = build_setup(shape)
        serial = make_gridder("slice_and_dice", build_setup(shape))
        par = make_gridder(
            "slice_and_dice_parallel", setup, min_parallel_ops=0, **kw
        )
        return serial, par

    def test_thread_crash_degrades_to_serial_bit_identical(self, rng):
        serial, par = self._pair(workers=2, backend="thread")
        coords = rng.uniform(0, 32, size=(120, 2))
        values = rng.standard_normal(120) + 1j * rng.standard_normal(120)
        ref = serial.grid(coords, values)
        with inject_faults(seed=3, worker_crash=1) as inj:
            out = par.grid(coords, values)
        assert any(site == "worker" for site, _ in inj.log)
        events = par.stats.degradations
        assert any(e.from_stage == "thread" and e.to_stage == "serial" for e in events)
        assert np.array_equal(out, ref)

    @needs_processes
    def test_process_crash_retries_bit_identical(self, rng):
        serial, par = self._pair(workers=2, backend="process")
        coords = rng.uniform(0, 32, size=(120, 2))
        values = rng.standard_normal(120) + 1j * rng.standard_normal(120)
        ref = serial.grid(coords, values)
        with inject_faults(seed=3, worker_crash=1):
            out = par.grid(coords, values)
        events = par.stats.degradations
        assert any("retry" in e.reason for e in events)
        assert np.array_equal(out, ref)

    @needs_processes
    def test_persistent_process_crashes_degrade_to_thread(self, rng):
        serial, par = self._pair(workers=2, backend="process")
        coords = rng.uniform(0, 32, size=(120, 2))
        values = rng.standard_normal(120) + 1j * rng.standard_normal(120)
        ref = serial.grid(coords, values)
        with inject_faults(seed=3, worker_crash=2):
            out = par.grid(coords, values)
        events = par.stats.degradations
        assert any(e.to_stage == "thread" for e in events)
        assert np.array_equal(out, ref)
        assert parallel_mod._FORK_WORK is None

    @needs_processes
    def test_hung_worker_terminated_and_pass_retried(self, rng):
        setup = build_setup((32, 32))
        par = make_gridder(
            "slice_and_dice_parallel",
            setup,
            workers=2,
            backend="process",
            min_parallel_ops=0,
            worker_timeout=0.5,
        )
        serial = make_gridder("slice_and_dice", build_setup((32, 32)))
        coords = rng.uniform(0, 32, size=(120, 2))
        values = rng.standard_normal(120) + 1j * rng.standard_normal(120)
        ref = serial.grid(coords, values)
        with inject_faults(seed=3, worker_hang=1, hang_seconds=30.0):
            out = par.grid(coords, values)
        events = par.stats.degradations
        assert any("worker_timeout" in e.reason for e in events)
        assert np.array_equal(out, ref)

    def test_worker_timeout_validation(self):
        with pytest.raises(ValueError, match="worker_timeout"):
            make_gridder(
                "slice_and_dice_parallel", build_setup((32, 32)), worker_timeout=-1
            )
        with pytest.raises(ValueError, match="max_retries"):
            make_gridder(
                "slice_and_dice_parallel", build_setup((32, 32)), max_retries=-1
            )


# ---------------------------------------------------------------------------
# FFT fallback chain
# ---------------------------------------------------------------------------
class TestFftFallback:
    @pytest.mark.skipif(
        not fft_backend_available("scipy"),
        reason="needs a scipy FFT backend to demote away from",
    )
    def test_runtime_failure_degrades_bit_identical(self):
        coords = radial_trajectory(16, 32)
        plan = NufftPlan((16, 16), coords, fft_backend="scipy")
        ref_plan = NufftPlan((16, 16), coords, fft_backend="numpy")
        values = np.exp(1j * np.linspace(0, 2, coords.shape[0]))
        ref = ref_plan.adjoint(values)
        with inject_faults(seed=0, fft_errors={"scipy": 1}) as inj:
            out = plan.adjoint(values)
        assert ("fft:scipy", "raise") in inj.log
        assert plan.timings.fft_fallbacks  # demotion recorded
        assert plan.timings.fft_backend != "scipy"  # sticky demotion
        # the retried transform ran on a reference backend: same bits
        # as a numpy-only plan when the chain landed on numpy
        if plan.timings.fft_backend == "numpy":
            assert np.array_equal(out, ref)
        assert np.isfinite(out).all()

    def test_exhausted_chain_raises_backend_failure_and_pool_balanced(self):
        coords = radial_trajectory(16, 32)
        chain = FallbackFftBackend("numpy", chain=("numpy",))
        plan = NufftPlan((16, 16), coords, fft_backend=chain)
        values = np.ones(coords.shape[0], dtype=complex)
        with inject_faults(seed=0, fft_errors={"numpy": 1}):
            with pytest.raises(BackendFailure):
                plan.adjoint(values)
        # the pooled grid buffer was released on the failure path
        assert plan.buffer_pool.outstanding == 0
        # and the plan still works once the fault budget is exhausted
        ref = NufftPlan((16, 16), coords, fft_backend="numpy").adjoint(values)
        assert np.array_equal(plan.adjoint(values), ref)

    def test_nested_fallback_rejected(self):
        inner = FallbackFftBackend("numpy")
        with pytest.raises(ValueError, match="nest|wrap"):
            FallbackFftBackend(inner)


# ---------------------------------------------------------------------------
# pooled-buffer leak regression
# ---------------------------------------------------------------------------
class TestPoolBalance:
    @pytest.mark.parametrize("name", ["slice_and_dice", "slice_and_dice_compiled"])
    def test_engine_exception_releases_dice(self, rng, name, monkeypatch):
        gridder = make_gridder(name, build_setup((16, 16)))
        gridder.buffer_pool = GridBufferPool()
        coords = rng.uniform(0, 16, size=(40, 2))
        values = rng.standard_normal(40) + 0j

        def boom(*args, **kwargs):
            raise RuntimeError("mid-call failure")

        # DiceLayout is a frozen dataclass: patch the class, not the
        # instance
        monkeypatch.setattr(type(gridder.layout), "dice_to_grid", boom)
        with pytest.raises(RuntimeError, match="mid-call"):
            gridder.grid(coords, values)
        assert gridder.buffer_pool.outstanding == 0

    def test_plan_quality_raise_keeps_pool_balanced(self, rng):
        coords = radial_trajectory(16, 32)
        plan = NufftPlan((16, 16), coords, quality_policy="raise")
        bad = np.ones(coords.shape[0], dtype=complex)
        bad[4] = np.nan
        with pytest.raises(DataQualityError):
            plan.adjoint(bad)
        assert plan.buffer_pool.outstanding == 0
        # recovery: a clean call still works on the same plan
        assert np.isfinite(plan.adjoint(np.ones_like(bad))).all()


# ---------------------------------------------------------------------------
# NuFFT plan quality policies
# ---------------------------------------------------------------------------
class TestPlanQuality:
    def test_adjoint_policies(self):
        coords = radial_trajectory(16, 32)
        values = np.exp(1j * np.linspace(0, 3, coords.shape[0]))
        bad = values.copy()
        bad[7] = np.inf + 0j
        keep = np.ones(coords.shape[0], dtype=bool)
        keep[7] = False
        with pytest.raises(DataQualityError):
            NufftPlan((16, 16), coords, quality_policy="raise").adjoint(bad)
        zero_plan = NufftPlan((16, 16), coords, quality_policy="zero")
        out = zero_plan.adjoint(bad)
        assert np.isfinite(out).all()
        assert zero_plan.timings.quality is not None
        assert zero_plan.timings.quality.zeroed == 1
        # zeroing the bad sample == removing it from the sum
        masked = values.copy()
        masked[7] = 0
        ref = NufftPlan((16, 16), coords).adjoint(masked)
        assert np.array_equal(out, ref)

    def test_forward_gates_nan_image(self):
        coords = radial_trajectory(16, 32)
        image = np.ones((16, 16), dtype=complex)
        image[3, 4] = np.nan
        with pytest.raises(DataQualityError):
            NufftPlan((16, 16), coords, quality_policy="raise").forward(image)
        plan = NufftPlan((16, 16), coords, quality_policy="zero")
        out = plan.forward(image)
        assert np.isfinite(out).all()
        assert plan.timings.quality.zeroed >= 1
        fixed = image.copy()
        fixed[3, 4] = 0
        ref = NufftPlan((16, 16), coords).forward(fixed)
        assert np.array_equal(out, ref)


# ---------------------------------------------------------------------------
# Toeplitz normal-operator supervision
# ---------------------------------------------------------------------------
class TestToeplitzSupervision:
    def test_nan_weights_typed_error(self):
        coords = radial_trajectory(16, 32)
        plan = NufftPlan((16, 16), coords)
        w = np.ones(coords.shape[0])
        w[0] = np.nan
        with pytest.raises(DataQualityError):
            ToeplitzNormalOperator(plan, weights=w)

    def test_health_check_passes_on_real_kernel(self):
        coords = radial_trajectory(16, 32)
        op = ToeplitzNormalOperator(NufftPlan((16, 16), coords))
        assert op.health_check() and op.healthy

    def test_health_check_fails_on_corrupt_kernel(self):
        coords = radial_trajectory(16, 32)
        op = ToeplitzNormalOperator(NufftPlan((16, 16), coords))
        op._kernel_fft = op._kernel_fft.copy()
        op._kernel_fft.flat[0] = np.nan
        assert not op.health_check()

    def test_psf_fault_falls_back_to_gridding_cg(self):
        coords = radial_trajectory(16, 32)
        plan = NufftPlan((16, 16), coords)
        kspace = plan.forward(
            np.outer(np.hanning(16), np.hanning(16)).astype(complex)
        )
        ref = cg_reconstruction(plan, kspace, n_iterations=5, normal="gridding")
        with inject_faults(seed=0, toeplitz_psf_errors=1) as inj:
            res = cg_reconstruction(plan, kspace, n_iterations=5, normal="toeplitz")
        assert ("toeplitz:psf", "raise") in inj.log
        assert any(
            e.component == "normal" and e.to_stage == "gridding"
            for e in res.degradations
        )
        # the degraded solve is literally the gridding-normal solve
        assert np.array_equal(res.image, ref.image)
        assert res.residual_norms == ref.residual_norms


# ---------------------------------------------------------------------------
# CG health guards
# ---------------------------------------------------------------------------
class TestCgGuards:
    def _problem(self):
        coords = radial_trajectory(16, 32)
        plan = NufftPlan((16, 16), coords)
        image = np.outer(np.hanning(16), np.hanning(16)).astype(complex)
        return plan, plan.forward(image)

    def test_transient_nan_gram_restarts_once(self, monkeypatch):
        # poison the image coming out of the adjoint — below the plan's
        # own sample-quality gate, exactly like a transient numerical
        # fault inside the operator.  Call 1 builds the RHS; call 2 is
        # the first Gram application inside the iteration loop.
        plan, kspace = self._problem()
        real_adjoint = plan.adjoint
        calls = {"n": 0}

        def flaky_adjoint(x):
            calls["n"] += 1
            if calls["n"] == 2:
                return np.full(plan.image_shape, np.nan, dtype=complex)
            return real_adjoint(x)

        monkeypatch.setattr(plan, "adjoint", flaky_adjoint)
        res = cg_reconstruction(plan, kspace, n_iterations=8)
        assert res.restarts == 1
        assert any(e.to_stage == "restart" for e in res.degradations)
        assert np.isfinite(res.image).all()

    def test_persistent_nan_gram_is_solver_breakdown(self, monkeypatch):
        plan, kspace = self._problem()
        real_adjoint = plan.adjoint
        calls = {"n": 0}

        def broken_adjoint(x):
            calls["n"] += 1
            if calls["n"] >= 2:  # RHS is fine; every Gram apply is NaN
                return np.full(plan.image_shape, np.nan, dtype=complex)
            return real_adjoint(x)

        monkeypatch.setattr(plan, "adjoint", broken_adjoint)
        with pytest.raises(SolverBreakdown):
            cg_reconstruction(plan, kspace, n_iterations=8)

    def test_nan_rhs_is_solver_breakdown(self):
        plan, kspace = self._problem()
        bad = kspace.copy()
        bad[0] = np.nan
        # default plan policy raises at the gate before CG even starts
        with pytest.raises((SolverBreakdown, DataQualityError)):
            cg_reconstruction(plan, bad, n_iterations=4)

    def test_healthy_solve_has_no_health_flags(self):
        plan, kspace = self._problem()
        res = cg_reconstruction(plan, kspace, n_iterations=8)
        assert res.restarts == 0
        assert res.breakdown is None
        assert res.degradations == ()
        assert np.isfinite(res.image).all()

    def test_batched_restart(self, monkeypatch):
        plan, kspace = self._problem()
        stack = np.stack([kspace, 0.5 * kspace])
        real = plan.adjoint_batch
        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if calls["n"] == 2:  # first Gram apply of the loop
                return np.full((2,) + plan.image_shape, np.nan, dtype=complex)
            return real(x)

        monkeypatch.setattr(plan, "adjoint_batch", flaky)
        res = cg_reconstruction(plan, stack, n_iterations=8)
        assert res.restarts == 1
        assert np.isfinite(res.image).all()


# ---------------------------------------------------------------------------
# reports
# ---------------------------------------------------------------------------
class TestReports:
    def test_quality_report_accumulate(self):
        a = DataQualityReport(policy="drop", n_samples=5, dropped=1)
        b = DataQualityReport(policy="drop", n_samples=3, dropped=2, wrapped=1)
        a.accumulate(b)
        assert a.n_samples == 8 and a.dropped == 3 and a.wrapped == 1
        assert not a.clean

    def test_timings_surface_quality_and_fallbacks(self):
        coords = radial_trajectory(16, 32)
        plan = NufftPlan((16, 16), coords)
        plan.adjoint(np.ones(coords.shape[0], dtype=complex))
        t = plan.timings
        assert t.quality is not None and t.quality.clean
        assert t.fft_fallbacks == ()
