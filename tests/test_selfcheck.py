"""Unit tests for the installation self-check."""

import pytest

from repro.selfcheck import SelfCheckError, run_self_check


class TestSelfCheck:
    def test_passes_on_healthy_install(self, capsys):
        report = run_self_check(verbose=True)
        out = capsys.readouterr().out
        assert "self-check" in out
        assert report.gridder_max_deviation < 1e-9
        assert report.jigsaw_cycles_ok
        assert report.table2_ok
        assert set(report.checks_run) == {
            "gridder_agreement",
            "nufft_accuracy",
            "adjointness",
            "jigsaw",
            "table2",
        }

    def test_quiet_mode(self, capsys):
        run_self_check(verbose=False)
        assert capsys.readouterr().out == ""

    def test_summary_format(self):
        report = run_self_check(verbose=False)
        s = report.summary()
        assert "Table II" in s and "cycle law" in s

    def test_deterministic_given_seed(self):
        a = run_self_check(verbose=False, seed=3)
        b = run_self_check(verbose=False, seed=3)
        assert a.nufft_vs_nudft_error == b.nufft_vs_nudft_error
