"""In-process service tests: jobs, workers, routing, backpressure.

Everything here drives :class:`repro.service.ReconService` (and below)
without a socket — the HTTP layer has its own suite in
``test_service_http.py``.  The contracts under test:

1. a job's result is bit-identical to calling the library directly
   with the same options (the service adds *no* numerics);
2. repeat traffic on one trajectory hits the warm plan/Toeplitz caches
   and sticks to one worker (affinity);
3. admission is bounded: the ``max_pending+1``-th submission raises
   :class:`~repro.errors.ServiceOverloaded` *before* an id is issued,
   and every accepted job still reaches a terminal state — including
   through a graceful drain;
4. LRU eviction under interleaved distinct-trajectory load never
   corrupts an in-flight plan (results stay equal to references).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import NufftPlan, cg_reconstruction, shepp_logan_2d
from repro.errors import ServiceOverloaded
from repro.gridding.buffers import GridBufferPool, PoolSnapshot
from repro.service import (
    Job,
    JobSpec,
    JobState,
    ReconService,
    ReconWorker,
    decode_array,
    encode_array,
    trajectory_fingerprint,
)
from repro.trajectories import radial_trajectory


def _problem(n=32, spokes=16, readout=32, seed=7):
    coords = radial_trajectory(spokes, readout)
    rng = np.random.default_rng(seed)
    m = coords.shape[0]
    samples = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    return coords, samples, np.ones(m)


# ----------------------------------------------------------------------
# job model
# ----------------------------------------------------------------------
class TestJobModel:
    def test_fingerprint_stable_and_discriminating(self):
        coords, _, _ = _problem()
        assert trajectory_fingerprint(coords) == trajectory_fingerprint(
            coords.copy()
        )
        other = radial_trajectory(17, 32)
        assert trajectory_fingerprint(coords) != trajectory_fingerprint(other)

    def test_array_codec_round_trip(self):
        rng = np.random.default_rng(3)
        for arr in (
            rng.standard_normal((5, 2)),
            (rng.standard_normal(7) + 1j * rng.standard_normal(7)),
            np.arange(6, dtype=np.float32).reshape(2, 3),
        ):
            out = decode_array(encode_array(arr))
            assert out.dtype == arr.dtype
            np.testing.assert_array_equal(out, arr)

    def test_decode_lenient_spellings(self):
        np.testing.assert_allclose(decode_array([[1.0, 2.0]]), [[1.0, 2.0]])
        z = decode_array({"real": [1.0, 2.0], "imag": [3.0, 4.0]})
        np.testing.assert_allclose(z, [1 + 3j, 2 + 4j])

    def test_spec_validation(self):
        coords, samples, _ = _problem()
        with pytest.raises(ValueError, match="method"):
            JobSpec((32, 32), coords, samples, method="magic")
        with pytest.raises(ValueError, match="rank"):
            JobSpec((32, 32, 32), coords, samples)
        with pytest.raises(ValueError, match="samples"):
            JobSpec((32, 32), coords, samples[:-3])

    def test_from_payload_rejects_unknown_options(self):
        coords, samples, _ = _problem()
        payload = {
            "image_shape": [32, 32],
            "coords": encode_array(coords),
            "samples": encode_array(samples.astype(complex)),
            "options": {"beam_power": 9001},
        }
        with pytest.raises(ValueError, match="beam_power"):
            JobSpec.from_payload(payload)

    def test_job_lifecycle_states(self):
        coords, samples, _ = _problem()
        job = Job(JobSpec((32, 32), coords, samples, method="adjoint"))
        assert job.state == JobState.QUEUED
        assert job.seconds is None
        job.mark_running("w0")
        assert job.state == JobState.RUNNING
        job.mark_failed(ValueError("nope"))
        assert job.state == JobState.FAILED
        assert job.state in JobState.TERMINAL
        assert "ValueError" in job.error
        assert job.wait(timeout=0.1)
        assert job.seconds is not None


# ----------------------------------------------------------------------
# end-to-end numerics + warm caches
# ----------------------------------------------------------------------
class TestServiceNumerics:
    def test_cg_job_matches_direct_call(self):
        coords, _, weights = _problem()
        plan = NufftPlan((32, 32), coords, gridder="slice_and_dice_compiled")
        samples = plan.forward(shepp_logan_2d(32).astype(complex))
        ref = cg_reconstruction(
            plan, samples, weights=weights, n_iterations=5, normal="toeplitz"
        )
        with ReconService(workers=1) as svc:
            job = svc.submit(
                JobSpec((32, 32), coords, samples, weights=weights,
                        n_iterations=5)
            )
            svc.wait(job.id, timeout=60)
        assert job.state == JobState.DONE
        np.testing.assert_array_equal(job.result.image, ref.image)

    def test_adjoint_job_matches_direct_call(self):
        coords, samples, weights = _problem()
        plan = NufftPlan((32, 32), coords, gridder="slice_and_dice_compiled")
        ref = plan.adjoint(samples * weights)
        with ReconService(workers=1) as svc:
            job = svc.submit(
                JobSpec((32, 32), coords, samples, weights=weights,
                        method="adjoint")
            )
            svc.wait(job.id, timeout=60)
        assert job.state == JobState.DONE
        np.testing.assert_array_equal(job.result.image, ref)

    def test_repeat_trajectory_hits_warm_caches(self):
        coords, samples, weights = _problem()
        with ReconService(workers=2) as svc:
            spec = lambda: JobSpec(  # noqa: E731
                (32, 32), coords, samples, weights=weights, n_iterations=3
            )
            first = svc.submit(spec())
            svc.wait(first.id, timeout=60)
            second = svc.submit(spec())
            svc.wait(second.id, timeout=60)
            assert first.result.plan_cache == "miss"
            assert first.result.toeplitz_cache == "miss"
            assert second.result.plan_cache == "hit"
            assert second.result.toeplitz_cache == "hit"
            # affinity: same fingerprint -> same worker
            assert first.worker == second.worker

    def test_distinct_weights_share_plan_not_toeplitz(self):
        coords, samples, weights = _problem()
        with ReconService(workers=1) as svc:
            a = svc.submit(JobSpec((32, 32), coords, samples,
                                   weights=weights, n_iterations=3))
            svc.wait(a.id, timeout=60)
            b = svc.submit(JobSpec((32, 32), coords, samples,
                                   weights=weights * 2.0, n_iterations=3))
            svc.wait(b.id, timeout=60)
        assert b.result.plan_cache == "hit"
        assert b.result.toeplitz_cache == "miss"

    def test_failed_job_surfaces_typed_error(self):
        coords, samples, _ = _problem()
        bad = coords.copy()
        bad[0, 0] = np.nan
        with ReconService(workers=1) as svc:
            job = svc.submit(JobSpec((32, 32), bad, samples, method="adjoint"))
            svc.wait(job.id, timeout=60)
        assert job.state == JobState.FAILED
        assert "CoordinateError" in job.error

    def test_quality_policy_drop_degrades_and_reports(self):
        coords, samples, weights = _problem()
        bad = coords.copy()
        bad[3] = np.nan
        with ReconService(workers=1) as svc:
            job = svc.submit(
                JobSpec((32, 32), bad, samples, weights=weights,
                        method="adjoint", quality_policy="drop")
            )
            svc.wait(job.id, timeout=60)
        assert job.state == JobState.DONE
        assert job.result.quality is not None
        assert job.result.quality["dropped"] >= 1
        assert np.all(np.isfinite(job.result.image))


# ----------------------------------------------------------------------
# routing + admission
# ----------------------------------------------------------------------
class TestRoutingAndAdmission:
    def test_distinct_trajectories_spread_over_workers(self):
        with ReconService(workers=2, autostart=False) as svc:
            specs = []
            for i in range(4):
                coords = radial_trajectory(8 + i, 16)
                samples = np.ones(coords.shape[0], dtype=complex)
                specs.append(JobSpec((16, 16), coords, samples,
                                     method="adjoint"))
            jobs = [svc.submit(s) for s in specs]
            workers = {j.id: None for j in jobs}
            svc.start()
            for j in jobs:
                svc.wait(j.id, timeout=60)
                workers[j.id] = j.worker
        assert len(set(workers.values())) == 2

    def test_backpressure_429_then_drain_completes_all(self):
        coords, samples, _ = _problem(16, 8, 16)
        svc = ReconService(workers=2, max_pending=3, autostart=False)
        accepted = [
            svc.submit(JobSpec((16, 16), coords, samples, method="adjoint"))
            for _ in range(3)
        ]
        with pytest.raises(ServiceOverloaded) as exc_info:
            svc.submit(JobSpec((16, 16), coords, samples, method="adjoint"))
        assert exc_info.value.retry_after >= 1
        assert svc.rejected == 1
        assert svc.pending() == 3
        # graceful drain finishes every accepted job, even though the
        # workers had not started when the jobs were accepted
        svc.close(drain=True)
        assert [j.state for j in accepted] == [JobState.DONE] * 3
        with pytest.raises(RuntimeError, match="not accepting"):
            svc.submit(JobSpec((16, 16), coords, samples, method="adjoint"))

    def test_slots_reopen_after_completion(self):
        coords, samples, _ = _problem(16, 8, 16)
        with ReconService(workers=1, max_pending=1) as svc:
            job = svc.submit(
                JobSpec((16, 16), coords, samples, method="adjoint")
            )
            svc.wait(job.id, timeout=60)
            # terminal job freed its admission slot
            again = svc.submit(
                JobSpec((16, 16), coords, samples, method="adjoint")
            )
            svc.wait(again.id, timeout=60)
            assert again.state == JobState.DONE

    def test_terminal_retention_bounded(self):
        coords, samples, _ = _problem(16, 8, 16)
        with ReconService(workers=1, max_jobs_retained=2) as svc:
            ids = []
            for _ in range(4):
                job = svc.submit(
                    JobSpec((16, 16), coords, samples, method="adjoint")
                )
                svc.wait(job.id, timeout=60)
                ids.append(job.id)
            assert svc.get(ids[0]) is None  # evicted
            assert svc.get(ids[-1]) is not None

    def test_stats_aggregate_is_merge_of_workers(self):
        coords, samples, weights = _problem()
        with ReconService(workers=2) as svc:
            for _ in range(2):
                job = svc.submit(JobSpec((32, 32), coords, samples,
                                         weights=weights, n_iterations=2))
                svc.wait(job.id, timeout=60)
            stats = svc.stats()
        expected = PoolSnapshot.merge(
            w.buffer_pool.snapshot() for w in svc.workers
        )
        assert stats["pool"] == expected.as_dict()
        assert stats["accepted"] == 2
        assert stats["jobs"] == {"done": 2}
        per_worker = [w["pool"] for w in stats["workers"]]
        assert sum(p["hits"] for p in per_worker) == stats["pool"]["hits"]


# ----------------------------------------------------------------------
# pool snapshots
# ----------------------------------------------------------------------
class TestPoolSnapshot:
    def test_snapshot_tracks_counters(self):
        pool = GridBufferPool()
        buf = pool.acquire((8, 8), np.complex128)
        pool.release(buf)
        buf = pool.acquire((8, 8), np.complex128)
        pool.release(buf)
        snap = pool.snapshot()
        assert isinstance(snap, PoolSnapshot)
        assert snap.hits == 1
        assert snap.misses == 1
        assert snap.outstanding == 0
        assert snap.hit_rate == 0.5
        assert snap.peak_bytes >= 8 * 8 * 16

    def test_merge_sums_fields(self):
        a = PoolSnapshot(hits=2, misses=2, miss_bytes=10, resident_bytes=5,
                         peak_bytes=7, outstanding=1)
        b = PoolSnapshot(hits=6, misses=0, miss_bytes=0, resident_bytes=3,
                         peak_bytes=4, outstanding=0)
        merged = PoolSnapshot.merge([a, b])
        assert merged.hits == 8
        assert merged.misses == 2
        assert merged.peak_bytes == 11
        assert merged.hit_rate == 0.8
        assert merged.as_dict()["hit_rate"] == 0.8

    def test_merge_empty_is_zero(self):
        zero = PoolSnapshot.merge([])
        assert zero.hits == 0 and zero.hit_rate == 0.0


# ----------------------------------------------------------------------
# LRU eviction under concurrent interleaved load (satellite)
# ----------------------------------------------------------------------
class TestWarmCacheHammer:
    def test_eviction_never_corrupts_inflight_plans(self):
        """One worker, tiny LRU, interleaved distinct trajectories.

        With ``plan_cache_size=2`` and four distinct trajectories
        submitted round-robin from four threads, plans are evicted
        while sibling jobs for the same fingerprint are still queued
        or running.  Every result must still equal the direct-library
        reference — eviction may cost a rebuild, never correctness.
        """
        n = 24
        problems = []
        for i in range(4):
            coords = radial_trajectory(10 + i, 24)
            rng = np.random.default_rng(i)
            m = coords.shape[0]
            samples = rng.standard_normal(m) + 1j * rng.standard_normal(m)
            plan = NufftPlan((n, n), coords,
                             gridder="slice_and_dice_compiled")
            problems.append((coords, samples, plan.adjoint(samples)))

        errors = []
        with ReconService(workers=1, plan_cache_size=2, max_pending=64) as svc:
            def _hammer(idx: int) -> None:
                try:
                    for rep in range(6):
                        coords, samples, ref = problems[(idx + rep) % 4]
                        job = svc.submit(
                            JobSpec((n, n), coords, samples, method="adjoint")
                        )
                        svc.wait(job.id, timeout=60)
                        assert job.state == JobState.DONE, job.error
                        np.testing.assert_array_equal(job.result.image, ref)
                except BaseException as exc:  # noqa: BLE001 - collected
                    errors.append(exc)

            threads = [
                threading.Thread(target=_hammer, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = svc.workers[0].stats()
        assert not errors, errors[0]
        assert stats["jobs_done"] == 24
        assert stats["warm_plans"] <= 2
        # the tiny LRU must actually have churned for this test to bite
        assert stats["plan_misses"] > 4
