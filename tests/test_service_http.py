"""HTTP front-end tests: routes, status codes, backpressure headers.

Each test boots a real :class:`repro.service.ReconServer` on an
ephemeral port (``port=0``) and talks to it through
:class:`repro.service.ReconClient` or raw ``urllib`` — the same wire a
curl user sees.  Status-code contract under test::

    202  job accepted (id issued)
    400  malformed payload (nothing enqueued)
    404  unknown route / unknown or evicted job id
    413  oversized body
    429  queue full (Retry-After header; nothing enqueued)
    503  draining (submissions only; status reads keep working)
    403  POST /shutdown without --allow-shutdown
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import NufftPlan
from repro.errors import ServiceOverloaded
from repro.service import (
    JobSpec,
    ReconClient,
    ReconServer,
    ReconService,
    encode_array,
)
from repro.trajectories import radial_trajectory


def _problem(n=32, spokes=16, readout=32):
    coords = radial_trajectory(spokes, readout)
    m = coords.shape[0]
    rng = np.random.default_rng(11)
    samples = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    return coords, samples, np.ones(m)


def _post_json(url: str, payload: dict):
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read()), resp.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}"), exc.headers


@pytest.fixture
def server():
    with ReconServer(port=0, workers=1) as srv:
        yield srv


class TestRoutes:
    def test_healthz_ok(self, server):
        client = ReconClient(server.url)
        health = client.healthz()
        assert health["http_status"] == 200
        assert health["status"] == "ok"
        assert health["workers"] == 1
        assert health["draining"] is False

    def test_job_round_trip_matches_direct(self, server):
        coords, samples, weights = _problem()
        plan = NufftPlan((32, 32), coords, gridder="slice_and_dice_compiled")
        ref = plan.adjoint(samples * weights)
        client = ReconClient(server.url)
        image = client.reconstruct((32, 32), coords, samples,
                                   weights=weights, method="adjoint")
        np.testing.assert_array_equal(image, ref)
        record = client.last_status
        assert record["state"] == "done"
        assert record["worker"] == "w0"
        assert record["result"]["seconds"] > 0

    def test_unknown_job_404(self, server):
        client = ReconClient(server.url)
        with pytest.raises(KeyError):
            client.status("deadbeef0000")

    def test_unknown_route_404(self, server):
        status, body, _ = _post_json(server.url + "/frobnicate", {})
        assert status == 404
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(server.url + "/frobnicate", timeout=10)
        assert exc_info.value.code == 404

    def test_bad_payload_400(self, server):
        status, body, _ = _post_json(server.url + "/jobs", {"nope": 1})
        assert status == 400
        assert "image_shape" in body["error"]
        coords, samples, _ = _problem()
        status, body, _ = _post_json(server.url + "/jobs", {
            "image_shape": [32, 32],
            "coords": encode_array(coords),
            "samples": encode_array(samples),
            "options": {"warp_factor": 9},
        })
        assert status == 400
        assert "warp_factor" in body["error"]

    def test_curl_style_plain_list_payload(self, server):
        # the lenient codec: a human can post plain JSON lists
        status, body, _ = _post_json(server.url + "/jobs", {
            "image_shape": [16, 16],
            "coords": [[0.0, 0.0], [1.0, 2.0], [3.0, 1.0]],
            "samples": {"real": [1.0, 0.5, 0.25], "imag": [0.0, 0.0, 0.0]},
            "method": "adjoint",
        })
        assert status == 202
        client = ReconClient(server.url)
        record = client.wait(body["job"], timeout=30)
        assert record["state"] == "done"

    def test_stats_shape(self, server):
        coords, samples, weights = _problem()
        client = ReconClient(server.url)
        client.reconstruct((32, 32), coords, samples, weights=weights,
                           n_iterations=2)
        stats = client.stats()
        assert stats["accepted"] == 1
        assert stats["jobs"] == {"done": 1}
        assert len(stats["workers"]) == 1
        worker = stats["workers"][0]
        assert worker["plan_misses"] == 1
        assert set(stats["pool"]) == {
            "hits", "misses", "miss_bytes", "resident_bytes", "peak_bytes",
            "outstanding", "hit_rate",
        }

    def test_shutdown_403_by_default(self, server):
        status, body, _ = _post_json(server.url + "/shutdown", {})
        assert status == 403


class TestBackpressure:
    def test_429_with_retry_after_header(self):
        coords, samples, _ = _problem(16, 8, 16)
        service = ReconService(workers=1, max_pending=2, autostart=False)
        with ReconServer(port=0, service=service) as srv:
            payload = {
                "image_shape": [16, 16],
                "coords": encode_array(coords),
                "samples": encode_array(samples),
                "method": "adjoint",
            }
            for _ in range(2):
                status, _, _ = _post_json(srv.url + "/jobs", payload)
                assert status == 202
            status, body, headers = _post_json(srv.url + "/jobs", payload)
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert body["retry_after"] == int(headers["Retry-After"])
            service.start()  # let the accepted jobs drain before teardown

    def test_client_raises_service_overloaded(self):
        coords, samples, _ = _problem(16, 8, 16)
        service = ReconService(workers=1, max_pending=1, autostart=False)
        with ReconServer(port=0, service=service) as srv:
            client = ReconClient(srv.url)
            client.submit((16, 16), coords, samples, method="adjoint")
            with pytest.raises(ServiceOverloaded) as exc_info:
                client.submit((16, 16), coords, samples, method="adjoint")
            assert exc_info.value.retry_after >= 1
            service.start()

    def test_wait_for_slot_rides_out_the_429(self):
        coords, samples, _ = _problem(16, 8, 16)
        with ReconServer(port=0, workers=1, max_pending=2) as srv:
            client = ReconClient(srv.url)
            ids = [
                client.submit((16, 16), coords, samples, method="adjoint",
                              wait_for_slot=True, max_retries=50)
                for _ in range(6)
            ]
            records = [client.wait(i, timeout=60) for i in ids]
        assert all(r["state"] == "done" for r in records)
        assert len(set(ids)) == 6


class TestDrain:
    def test_graceful_drain_finishes_accepted_jobs(self):
        coords, samples, _ = _problem(16, 8, 16)
        service = ReconService(workers=1, max_pending=8, autostart=False)
        srv = ReconServer(port=0, service=service)
        srv.start()
        client = ReconClient(srv.url)
        ids = [
            client.submit((16, 16), coords, samples, method="adjoint")
            for _ in range(4)
        ]
        # close() drains: every accepted job must reach a terminal state
        srv.close(drain=True)
        for job_id in ids:
            job = service.get(job_id)
            assert job is not None
            assert job.state == "done"

    def test_shutdown_route_when_enabled(self):
        coords, samples, _ = _problem(16, 8, 16)
        srv = ReconServer(port=0, workers=1, allow_shutdown=True)
        srv.start()
        client = ReconClient(srv.url)
        job_id = client.submit((16, 16), coords, samples, method="adjoint")
        reply = client.shutdown()
        assert reply["http_status"] == 202
        assert srv.wait_closed(timeout=30)
        # drained, not dropped
        assert srv.service.get(job_id).state == "done"
