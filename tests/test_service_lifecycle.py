"""Job lifecycle robustness: deadlines, cancellation, checkpoint/resume,
and the supervised worker pool.

The contracts under test:

1. deadlines and cancellation are *cooperative*: the streaming engine
   checks between chunks and CG between iterations, raising the typed
   :class:`~repro.errors.DeadlineExceeded` /
   :class:`~repro.errors.JobCancelled` — never a silently truncated
   result;
2. checkpoint/resume is *exact*: a streamed adjoint interrupted after
   >= 3 checkpoint intervals and resumed from its snapshot produces
   ``np.array_equal`` output vs an uninterrupted run, on both the
   seeded-bincount numpy lane and the jit lane;
3. supervision frees wedged workers: an injected hang or crash is
   detected within one watchdog period, the worker is replaced, and
   the wedged job is requeued (resuming mid-stream from its
   checkpoint) or terminated — without wedging any other accepted job;
4. the service-boundary conveniences hold: idempotency keys dedup
   resubmissions, ``POST /jobs/<id>/cancel`` works over HTTP, the
   client polls with capped exponential backoff, and the lifecycle
   counters/breaker states surface in ``/stats``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import NufftPlan
from repro.core.jit import jit_available
from repro.errors import DeadlineExceeded, JobCancelled
from repro.robustness import (
    BreakerBoard,
    CancelToken,
    CheckpointConfig,
    CheckpointStore,
    CircuitBreaker,
    Deadline,
    FileCheckpointStore,
    StreamCheckpoint,
    inject_faults,
)
from repro.recon import cg_reconstruction
from repro.service import Job, JobSpec, JobState, ReconService
from repro.service.worker import FFT_CHAIN, LANE_CHAIN, breaker_keys
from repro.trajectories import radial_trajectory


def _problem(spokes=16, readout=24, seed=7):
    coords = radial_trajectory(spokes, readout)
    rng = np.random.default_rng(seed)
    m = coords.shape[0]
    samples = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    return coords, samples


def _stream_plan(coords, lane="numpy", n=24, chunk=48):
    return NufftPlan(
        (n, n),
        coords,
        gridder="slice_and_dice_streaming",
        gridder_options={"chunk_samples": chunk, "lane": lane},
    )


def _lanes():
    lanes = ["numpy"]
    if jit_available():
        lanes.append("jit")
    return lanes


# ----------------------------------------------------------------------
# deadline / cancel primitives
# ----------------------------------------------------------------------
class TestDeadlineAndCancel:
    def test_deadline_expiry_and_remaining(self):
        d = Deadline.after(60.0)
        assert not d.expired
        assert 0 < d.remaining() <= 60.0
        expired = Deadline.after(-0.001)
        assert expired.expired
        assert expired.remaining() == 0.0

    def test_cancel_token_raises_typed_error(self):
        token = CancelToken()
        token.check()  # clean token is a no-op
        token.cancel("operator said stop")
        token.cancel("second reason is ignored")
        with pytest.raises(JobCancelled, match="operator said stop"):
            token.check()

    def test_deadline_wins_over_explicit_cancel(self):
        token = CancelToken(deadline=Deadline.after(-1.0))
        token.cancel("also cancelled")
        with pytest.raises(DeadlineExceeded):
            token.check()
        # DeadlineExceeded IS a JobCancelled: one except clause catches both
        assert issubclass(DeadlineExceeded, JobCancelled)

    def test_cg_checks_between_iterations(self):
        coords, samples = _problem()
        plan = NufftPlan((24, 24), coords, gridder="slice_and_dice_compiled")
        with pytest.raises(DeadlineExceeded):
            cg_reconstruction(
                plan,
                samples,
                n_iterations=5,
                cancel=CancelToken(deadline=Deadline.after(-1.0)),
            )

    def test_streaming_adjoint_checks_between_chunks(self):
        coords, samples = _problem()
        plan = _stream_plan(coords)
        token = CancelToken()
        seen = {"n": 0}

        def hook():
            seen["n"] += 1
            if seen["n"] >= 3:
                token.cancel("mid-stream interrupt")

        token.on_check = hook
        plan.cancel_token = token
        with pytest.raises(JobCancelled, match="mid-stream"):
            plan.adjoint(samples)
        assert seen["n"] >= 3  # entry check + per-chunk checks


# ----------------------------------------------------------------------
# checkpoint stores
# ----------------------------------------------------------------------
class TestCheckpointStores:
    def _snap(self, cursor=2, fingerprint="fp"):
        return StreamCheckpoint(
            fingerprint=fingerprint,
            chunk_cursor=cursor,
            sample_cursor=cursor * 8,
            dice=np.arange(6, dtype=np.complex128).reshape(1, 6),
        )

    def test_memory_store_lru(self):
        store = CheckpointStore(max_entries=2)
        for key in ("a", "b", "c"):
            store.save(key, self._snap())
        assert store.load("a") is None  # evicted
        assert store.load("c") is not None
        assert len(store) == 2
        store.delete("c")
        store.delete("c")  # idempotent
        assert len(store) == 1

    def test_file_store_round_trip(self, tmp_path):
        store = FileCheckpointStore(tmp_path)
        snap = self._snap(cursor=5)
        store.save("job-1", snap)
        assert len(store) == 1
        back = store.load("job-1")
        assert back.fingerprint == snap.fingerprint
        assert back.chunk_cursor == 5
        np.testing.assert_array_equal(back.dice, snap.dice)
        assert store.load("missing") is None
        store.delete("job-1")
        assert len(store) == 0

    def test_matches_rejects_stale_snapshots(self):
        snap = self._snap()
        assert snap.matches("fp", (1, 6))
        assert not snap.matches("other-plan", (1, 6))
        assert not snap.matches("fp", (2, 6))
        assert not StreamCheckpoint(
            fingerprint="fp", chunk_cursor=0, sample_cursor=0, dice=snap.dice
        ).matches("fp", (1, 6))  # cursor 0 carries nothing worth resuming


# ----------------------------------------------------------------------
# exact resume (the tentpole numerics contract)
# ----------------------------------------------------------------------
class TestCheckpointResume:
    @pytest.mark.parametrize("lane", _lanes())
    def test_interrupt_then_resume_is_bit_identical(self, lane):
        """Kill mid-stream after >= 3 checkpoint intervals, resume from
        the snapshot: output must be ``np.array_equal`` to an
        uninterrupted run on the same lane."""
        coords, samples = _problem()
        ref = _stream_plan(coords, lane=lane).adjoint(samples)

        store = CheckpointStore()
        plan = _stream_plan(coords, lane=lane)
        gridder = plan.gridder
        gridder.checkpoint = CheckpointConfig(
            store=store, key="t", fingerprint="fp", every=1
        )
        token = CancelToken()
        seen = {"n": 0}

        def hook():
            seen["n"] += 1
            if seen["n"] >= 5:  # entry + 3 accumulated chunks, die on 4th
                token.cancel("injected interrupt")

        token.on_check = hook
        plan.cancel_token = token
        with pytest.raises(JobCancelled):
            plan.adjoint(samples)
        snap = store.load("t")
        assert snap is not None and snap.chunk_cursor >= 3

        plan.cancel_token = None
        out = plan.adjoint(samples)  # same config -> resumes from snapshot
        assert gridder.last_resume == {
            "chunk_cursor": snap.chunk_cursor,
            "sample_cursor": snap.sample_cursor,
        }
        assert np.array_equal(out, ref)
        assert store.load("t") is None  # delete_on_success cleaned up

    def test_stale_snapshot_is_ignored_not_blended(self):
        coords, samples = _problem()
        ref = _stream_plan(coords).adjoint(samples)
        store = CheckpointStore()
        store.save(
            "t",
            StreamCheckpoint(
                fingerprint="some-other-plan",
                chunk_cursor=3,
                sample_cursor=99,
                dice=np.ones((1, 4), dtype=np.complex128),
            ),
        )
        plan = _stream_plan(coords)
        plan.gridder.checkpoint = CheckpointConfig(
            store=store, key="t", fingerprint="fp", every=1
        )
        out = plan.adjoint(samples)
        assert np.array_equal(out, ref)
        assert plan.gridder.last_resume is None
        assert any(
            e.component == "checkpoint" and e.to_stage == "fresh"
            for e in plan.gridder.degradations
        )


# ----------------------------------------------------------------------
# circuit breakers
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_at_threshold_then_half_open_probe(self):
        b = CircuitBreaker(failure_threshold=2, cooldown_seconds=0.05)
        assert b.state == "closed" and b.allow()
        b.record_failure()
        assert b.state == "closed"
        b.record_failure()
        assert b.state == "open"
        assert not b.allow()
        time.sleep(0.06)
        assert b.state == "half-open"
        assert b.allow()       # exactly one probe admitted
        assert not b.allow()   # the rest wait for the probe's verdict
        b.record_success()
        assert b.state == "closed"

    def test_probe_failure_reopens(self):
        b = CircuitBreaker(failure_threshold=1, cooldown_seconds=30.0)
        b.record_failure()
        assert b.state == "open"
        b.force_half_open()
        assert b.allow()
        b.record_failure()
        assert b.state == "open"
        assert b.snapshot()["consecutive_failures"] == 2

    def test_board_tracks_keys(self):
        board = BreakerBoard(failure_threshold=1, cooldown_seconds=30.0)
        assert board.allow("lane:slice_and_dice_jit")
        board.record_failure("lane:slice_and_dice_jit")
        assert not board.allow("lane:slice_and_dice_jit")
        assert board.open_keys() == ["lane:slice_and_dice_jit"]
        assert "lane:slice_and_dice_jit" in board.snapshot()

    def test_demotion_chains_end_at_the_floor(self):
        # every chain rung resolves, and the floors are not in the maps
        assert LANE_CHAIN["slice_and_dice_jit"] == "slice_and_dice_compiled"
        assert "slice_and_dice_compiled" not in LANE_CHAIN
        assert FFT_CHAIN["pyfftw"] == "scipy" and FFT_CHAIN["scipy"] == "numpy"
        assert "numpy" not in FFT_CHAIN

    def test_open_breaker_demotes_spec_at_plan_time(self):
        coords, samples = _problem()
        with ReconService(workers=1, watchdog_period=None,
                          breaker_threshold=1) as svc:
            svc.breakers.record_failure("lane:slice_and_dice_jit")
            job = svc.submit(
                JobSpec((24, 24), coords, samples, method="adjoint",
                        gridder="slice_and_dice_jit")
            )
            svc.wait(job.id, timeout=60)
        assert job.state == JobState.DONE
        assert any(
            d.component == "service" and d.to_stage == "lane:slice_and_dice_compiled"
            for d in job.result.degradations
        )


# ----------------------------------------------------------------------
# job model: attempt fencing + requeue
# ----------------------------------------------------------------------
class TestJobFencing:
    def test_terminal_marks_are_idempotent(self):
        coords, samples = _problem()
        job = Job(JobSpec((24, 24), coords, samples, method="adjoint"))
        assert job.mark_cancelled("first")
        assert not job.mark_failed(ValueError("late"))
        assert not job.mark_cancelled("again")
        assert job.state == JobState.CANCELLED
        assert job.error == "first"

    def test_requeue_fences_zombie_marks(self):
        coords, samples = _problem()
        job = Job(JobSpec((24, 24), coords, samples, method="adjoint"))
        attempt = job.mark_running("w0")
        old_token = job.cancel_token
        assert job.requeue()
        assert job.state == JobState.QUEUED
        assert job.requeues == 1
        assert job.cancel_token is not old_token
        # the abandoned thread's marks carry the stale attempt: ignored
        assert not job.mark_failed(RuntimeError("zombie"), attempt=attempt)
        assert not job.mark_done(None, attempt=attempt)
        assert job.state == JobState.QUEUED
        # the replacement attempt's marks work
        attempt2 = job.mark_running("w0")
        assert attempt2 == attempt + 2
        assert job.mark_cancelled("real", attempt=attempt2)

    def test_requeue_preserves_the_absolute_deadline(self):
        coords, samples = _problem()
        job = Job(JobSpec((24, 24), coords, samples, method="adjoint",
                          deadline_seconds=60.0))
        before = job.deadline
        job.mark_running("w0")
        job.requeue()
        assert job.deadline is before  # retry never extends the SLA
        assert job.cancel_token.deadline is before

    def test_mark_running_skips_terminal_jobs(self):
        coords, samples = _problem()
        job = Job(JobSpec((24, 24), coords, samples, method="adjoint"))
        job.mark_cancelled("cancelled while queued")
        assert job.mark_running("w0") is None

    def test_spec_validation(self):
        coords, samples = _problem()
        with pytest.raises(ValueError, match="deadline_seconds"):
            JobSpec((24, 24), coords, samples, deadline_seconds=0)
        with pytest.raises(ValueError, match="idempotency_key"):
            JobSpec((24, 24), coords, samples, idempotency_key="")
        spec = JobSpec((24, 24), coords, samples, deadline_seconds=5,
                       idempotency_key="k")
        # per-call options must not fragment the warm-plan cache
        bare = JobSpec((24, 24), coords, samples)
        assert spec.plan_key() == bare.plan_key()

    def test_from_payload_accepts_lifecycle_options(self):
        from repro.service import encode_array

        coords, samples = _problem()
        spec = JobSpec.from_payload({
            "image_shape": [24, 24],
            "coords": encode_array(coords),
            "samples": encode_array(samples),
            "method": "adjoint",
            "options": {"deadline_seconds": "2.5", "idempotency_key": "abc"},
        })
        assert spec.deadline_seconds == 2.5
        assert spec.idempotency_key == "abc"


# ----------------------------------------------------------------------
# service-level lifecycle
# ----------------------------------------------------------------------
class TestServiceLifecycle:
    def test_cancel_queued_job(self):
        coords, samples = _problem()
        with ReconService(workers=1, autostart=False,
                          watchdog_period=None) as svc:
            job = svc.submit(JobSpec((24, 24), coords, samples,
                                     method="adjoint"))
            svc.cancel(job.id, "changed my mind")
            assert job.state == JobState.CANCELLED
            assert job.error == "changed my mind"
            svc.start()  # draining executes nothing for the cancelled job
        assert svc.jobs_cancelled == 1

    def test_cancel_running_job_stops_between_iterations(self):
        coords, samples = _problem()
        with ReconService(workers=1, watchdog_period=None) as svc:
            job = svc.submit(
                JobSpec((32, 32), coords, samples, n_iterations=100000,
                        tolerance=1e-30, normal="gridding")
            )
            deadline = time.monotonic() + 10
            while job.state != JobState.RUNNING:
                assert time.monotonic() < deadline, job.state
                time.sleep(0.005)
            svc.cancel(job.id, "cancelled by client")
            assert job.wait(timeout=30)
        assert job.state == JobState.CANCELLED
        assert "cancelled by client" in job.error
        assert svc.stats()["jobs_cancelled"] == 1

    def test_cancel_unknown_id_raises(self):
        with ReconService(workers=1, watchdog_period=None) as svc:
            with pytest.raises(KeyError):
                svc.cancel("nope")

    def test_deadline_exceeded_surfaces_in_status(self):
        coords, samples = _problem()
        with ReconService(workers=1, watchdog_period=None) as svc:
            job = svc.submit(
                JobSpec((24, 24), coords, samples, method="adjoint",
                        deadline_seconds=1e-4)
            )
            assert job.wait(timeout=30)
        assert job.state == JobState.DEADLINE_EXCEEDED
        assert "deadline exceeded" in job.error
        record = job.as_dict()
        assert record["state"] == "deadline_exceeded"
        assert record["deadline_seconds"] == 1e-4
        assert svc.jobs_deadline_exceeded == 1

    def test_watchdog_sweeps_expired_queued_jobs(self):
        coords, samples = _problem()
        svc = ReconService(workers=1, autostart=False, watchdog_period=None)
        job = svc.submit(JobSpec((24, 24), coords, samples, method="adjoint",
                                 deadline_seconds=1e-4))
        from repro.service import Watchdog

        time.sleep(0.002)
        Watchdog(svc, period=0.05).sweep()
        assert job.state == JobState.DEADLINE_EXCEEDED
        assert "while queued" in job.error
        svc.close(drain=False)

    def test_idempotency_key_dedups_resubmission(self):
        coords, samples = _problem()
        with ReconService(workers=1, watchdog_period=None) as svc:
            make = lambda: JobSpec(  # noqa: E731
                (24, 24), coords, samples, method="adjoint",
                idempotency_key="retry-42",
            )
            first = svc.submit(make())
            svc.wait(first.id, timeout=60)
            again = svc.submit(make())        # after terminal: still dedups
            assert again is first
            other = svc.submit(JobSpec((24, 24), coords, samples,
                                       method="adjoint",
                                       idempotency_key="retry-43"))
            assert other is not first
            svc.wait(other.id, timeout=60)
        assert svc.deduplicated == 1
        assert svc.accepted == 2

    def test_stats_surface_lifecycle_counters(self):
        coords, samples = _problem()
        with ReconService(workers=1) as svc:
            job = svc.submit(JobSpec((24, 24), coords, samples,
                                     method="adjoint"))
            svc.wait(job.id, timeout=60)
            stats = svc.stats()
        for key in (
            "jobs_cancelled", "jobs_deadline_exceeded", "jobs_resumed",
            "watchdog_restarts", "breakers", "open_breakers",
            "checkpoints_held", "deduplicated", "events",
        ):
            assert key in stats, key
        assert stats["open_breakers"] == []
        assert stats["watchdog_restarts"] == 0


# ----------------------------------------------------------------------
# chaos: hang / crash supervision (the tentpole acceptance tests)
# ----------------------------------------------------------------------
class TestSupervisionChaos:
    def _spec(self, coords, samples, **kw):
        return JobSpec(
            (24, 24), coords, samples, method="adjoint",
            gridder="slice_and_dice_streaming",
            gridder_options={"chunk_samples": 32, "lane": "numpy"},
            **kw,
        )

    def test_hung_worker_is_freed_within_one_watchdog_period(self):
        """An injected hang under a deadline: the watchdog replaces the
        worker, the job goes terminal promptly, and the replacement
        serves the next job — nothing waits out the 30s hang."""
        coords, samples = _problem()
        svc = ReconService(workers=1, watchdog_period=0.05,
                           watchdog_stale_after=0.2)
        try:
            with inject_faults(seed=5, worker_hang=1, hang_seconds=30.0,
                               service_worker_faults=True) as inj:
                t0 = time.monotonic()
                job = svc.submit(self._spec(coords, samples,
                                            deadline_seconds=0.15))
                assert job.wait(timeout=10)
                elapsed = time.monotonic() - t0
                assert elapsed < 5.0, f"took {elapsed:.2f}s against a 30s hang"
                assert job.state == JobState.DEADLINE_EXCEEDED, job.state
                assert svc.watchdog_restarts == 1
                assert any("hang" in d for _, d in inj.log)
                # the replacement worker is live and serves new jobs
                follow_up = svc.submit(self._spec(coords, samples))
                assert follow_up.wait(timeout=30)
                assert follow_up.state == JobState.DONE, follow_up.error
        finally:
            svc.close()

    @pytest.mark.parametrize("lane", _lanes())
    def test_crashed_worker_resumes_from_checkpoint_bit_identical(self, lane):
        """Kill the worker thread mid-stream (after >= 3 checkpointed
        chunks): the watchdog restarts it, the requeued job resumes
        from its snapshot, and the image is ``np.array_equal`` to an
        uninterrupted run."""
        coords, samples = _problem()
        opts = {"chunk_samples": 32, "lane": lane}
        svc = ReconService(workers=1, watchdog_period=0.05,
                           watchdog_stale_after=0.3, checkpoint_every=1)
        try:
            ref_job = svc.submit(
                JobSpec((24, 24), coords, samples, method="adjoint",
                        gridder="slice_and_dice_streaming",
                        gridder_options=dict(opts))
            )
            assert ref_job.wait(timeout=30)
            assert ref_job.state == JobState.DONE, ref_job.error
            ref = ref_job.result.image

            with inject_faults(seed=3, worker_crash=1,
                               service_worker_faults=True,
                               worker_fault_delay=4) as inj:
                job = svc.submit(
                    JobSpec((24, 24), coords, samples, method="adjoint",
                            gridder="slice_and_dice_streaming",
                            gridder_options=dict(opts))
                )
                assert job.wait(timeout=30)
                assert job.state == JobState.DONE, job.error
                assert job.requeues == 1
                assert job.result.resumed_from is not None
                assert job.result.resumed_from["chunk_cursor"] >= 3
                assert np.array_equal(job.result.image, ref)
                assert svc.watchdog_restarts == 1
                assert svc.jobs_resumed == 1
                assert any("crash" in d for _, d in inj.log)
        finally:
            svc.close()

    def test_wedge_never_stalls_other_accepted_jobs(self):
        """Jobs queued behind the wedged one ride over to the
        replacement worker and finish."""
        coords, samples = _problem()
        svc = ReconService(workers=1, watchdog_period=0.05,
                           watchdog_stale_after=0.2)
        try:
            with inject_faults(seed=9, worker_crash=1,
                               service_worker_faults=True,
                               worker_fault_delay=2):
                jobs = [svc.submit(self._spec(coords, samples))
                        for _ in range(3)]
                for job in jobs:
                    assert job.wait(timeout=30)
                    assert job.state == JobState.DONE, job.error
            assert svc.watchdog_restarts == 1
            # the wedge fed the breaker board (one failure, not open yet)
            key = breaker_keys(jobs[0].spec)[0]
            assert svc.breakers.get(key).snapshot()["total_failures"] >= 1
        finally:
            svc.close()

    def test_requeue_budget_exhaustion_force_fails(self):
        coords, samples = _problem()
        svc = ReconService(workers=1, watchdog_period=0.05,
                           watchdog_stale_after=0.2, max_requeues=0)
        try:
            with inject_faults(seed=11, worker_crash=1,
                               service_worker_faults=True,
                               worker_fault_delay=2):
                job = svc.submit(self._spec(coords, samples))
                assert job.wait(timeout=10)
            assert job.state == JobState.FAILED
            assert "requeue budget" in job.error
            assert any(e.to_stage == "restart" for e in svc.events)
        finally:
            svc.close()


# ----------------------------------------------------------------------
# client backoff (no socket needed: status + sleep are stubbed)
# ----------------------------------------------------------------------
class TestClientBackoff:
    def test_wait_backs_off_exponentially_with_cap(self, monkeypatch):
        from repro.service import client as client_mod

        client = client_mod.ReconClient("http://stub.invalid")
        states = iter(["queued", "queued", "running", "running", "running",
                       "done"])
        monkeypatch.setattr(
            client, "status",
            lambda job_id: {"state": next(states), "job": job_id},
        )
        sleeps = []
        monkeypatch.setattr(client_mod.time, "sleep", sleeps.append)
        monkeypatch.setattr(client_mod.random, "random", lambda: 0.5)
        record = client.wait("j", timeout=60.0, poll=0.02, max_poll=0.1)
        assert record["state"] == "done"
        # 0.02 doubling to the 0.1 cap (jitter pinned to 1.0x)
        assert sleeps == pytest.approx([0.02, 0.04, 0.08, 0.1, 0.1])

    def test_wait_treats_all_terminal_states_as_final(self, monkeypatch):
        from repro.service import client as client_mod

        client = client_mod.ReconClient("http://stub.invalid")
        for terminal in ("done", "failed", "cancelled", "deadline_exceeded"):
            states = iter(["queued", terminal])
            monkeypatch.setattr(
                client, "status",
                lambda job_id, _s=states: {"state": next(_s), "job": job_id},
            )
            monkeypatch.setattr(client_mod.time, "sleep", lambda s: None)
            record = client.wait("j", timeout=5.0, poll=0.001)
            assert record["state"] == terminal
            assert client.last_status is record


# ----------------------------------------------------------------------
# HTTP cancel endpoint (end to end)
# ----------------------------------------------------------------------
class TestHttpCancel:
    def test_cancel_endpoint_round_trip(self):
        from repro.service import ReconClient, ReconServer

        coords, samples = _problem()
        with ReconServer(port=0, workers=1) as server:
            client = ReconClient(server.url)
            job_id = client.submit(
                (32, 32), coords, samples, n_iterations=100000,
                tolerance=1e-30, normal="gridding",
            )
            deadline = time.monotonic() + 10
            while client.status(job_id)["state"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.005)
            ack = client.cancel(job_id)
            assert ack["job"] == job_id
            record = client.wait(job_id, timeout=30)
            assert record["state"] == "cancelled"
            # idempotent: cancelling a terminal job changes nothing
            again = client.cancel(job_id)
            assert again["state"] == "cancelled"
            with pytest.raises(KeyError):
                client.cancel("unknown-id")
            stats = client.stats()
            assert stats["jobs_cancelled"] == 1

    def test_deadline_over_http(self):
        from repro.service import ReconClient, ReconServer

        coords, samples = _problem()
        with ReconServer(port=0, workers=1) as server:
            client = ReconClient(server.url)
            job_id = client.submit((24, 24), coords, samples,
                                   method="adjoint", deadline_seconds=1e-4)
            record = client.wait(job_id, timeout=30)
            assert record["state"] == "deadline_exceeded"
            assert "deadline exceeded" in record["error"]
