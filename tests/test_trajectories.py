"""Unit tests for the sampling trajectory generators."""

import numpy as np
import pytest

from repro.trajectories import (
    cartesian_trajectory,
    golden_angle_radial,
    jittered_grid_trajectory,
    radial_trajectory,
    random_trajectory,
    rosette_trajectory,
    spiral_trajectory,
    stack_of_stars_3d,
)

ALL_2D = [
    ("radial", lambda: radial_trajectory(16, 32)),
    ("golden", lambda: golden_angle_radial(16, 32)),
    ("spiral", lambda: spiral_trajectory(4, 128)),
    ("random", lambda: random_trajectory(512, 2, rng=0)),
    ("rosette", lambda: rosette_trajectory(512)),
    ("cartesian", lambda: cartesian_trajectory(16)),
    ("jittered", lambda: jittered_grid_trajectory(16, rng=0)),
]


@pytest.mark.parametrize("name,factory", ALL_2D, ids=[n for n, _ in ALL_2D])
class TestCommon2D:
    def test_shape(self, name, factory):
        pts = factory()
        assert pts.ndim == 2 and pts.shape[1] == 2

    def test_within_normalized_torus(self, name, factory):
        pts = factory()
        assert np.all(pts >= -0.5) and np.all(pts < 0.5)

    def test_finite(self, name, factory):
        assert np.all(np.isfinite(factory()))

    def test_deterministic(self, name, factory):
        np.testing.assert_array_equal(factory(), factory())


class TestRadial:
    def test_sample_count(self):
        assert radial_trajectory(10, 64).shape == (640, 2)

    def test_spokes_pass_through_origin(self):
        pts = radial_trajectory(8, 64).reshape(8, 64, 2)
        # the readout index at n/2 is exactly the center
        np.testing.assert_allclose(pts[:, 32], 0.0, atol=1e-15)

    def test_uniform_angles(self):
        pts = radial_trajectory(4, 16).reshape(4, 16, 2)
        ang = np.arctan2(pts[:, -1, 1], pts[:, -1, 0])
        diffs = np.diff(ang)
        np.testing.assert_allclose(diffs, diffs[0], atol=1e-12)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            radial_trajectory(0, 64)
        with pytest.raises(ValueError):
            radial_trajectory(4, 0)

    def test_golden_angle_prefix_coverage(self):
        """Any prefix of golden-angle spokes covers angles roughly
        uniformly: the largest angular gap shrinks as spokes accrue."""
        def max_gap(n):
            pts = golden_angle_radial(n, 8).reshape(n, 8, 2)
            ang = np.sort(np.arctan2(pts[:, -1, 1], pts[:, -1, 0]) % np.pi)
            gaps = np.diff(np.concatenate([ang, [ang[0] + np.pi]]))
            return gaps.max()

        assert max_gap(55) < max_gap(13) < max_gap(3)


class TestSpiral:
    def test_sample_count(self):
        assert spiral_trajectory(3, 100).shape == (300, 2)

    def test_starts_at_center(self):
        pts = spiral_trajectory(1, 100)
        assert np.linalg.norm(pts[0]) < 1e-12

    def test_radius_monotone_for_uniform_density(self):
        pts = spiral_trajectory(1, 256)
        r = np.linalg.norm(pts, axis=1)
        assert np.all(np.diff(r) >= -1e-12)

    def test_variable_density_oversamples_center(self):
        uni = spiral_trajectory(1, 1024, density_power=1.0)
        vd = spiral_trajectory(1, 1024, density_power=0.5)
        center_uni = np.mean(np.linalg.norm(uni, axis=1) < 0.1)
        center_vd = np.mean(np.linalg.norm(vd, axis=1) < 0.1)
        assert center_vd < center_uni  # power<1 pushes radius up faster

    def test_interleaves_are_rotations(self):
        pts = spiral_trajectory(2, 64).reshape(2, 64, 2)
        r0 = np.linalg.norm(pts[0], axis=1)
        r1 = np.linalg.norm(pts[1], axis=1)
        np.testing.assert_allclose(r0, r1, atol=1e-12)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            spiral_trajectory(0, 10)
        with pytest.raises(ValueError):
            spiral_trajectory(1, 10, turns=-1)
        with pytest.raises(ValueError):
            spiral_trajectory(1, 10, density_power=0)


class TestRandomAndJittered:
    def test_random_seeded_reproducible(self):
        a = random_trajectory(100, 2, rng=7)
        b = random_trajectory(100, 2, rng=7)
        np.testing.assert_array_equal(a, b)

    def test_random_3d(self):
        assert random_trajectory(10, 3, rng=0).shape == (10, 3)

    def test_random_rejects_bad(self):
        with pytest.raises(ValueError):
            random_trajectory(0)
        with pytest.raises(ValueError):
            random_trajectory(5, 0)

    def test_jitter_zero_is_cartesian(self):
        j = jittered_grid_trajectory(8, jitter=0.0, rng=0)
        c = cartesian_trajectory(8)
        np.testing.assert_allclose(np.sort(j.ravel()), np.sort(c.ravel()), atol=1e-12)

    def test_jitter_bounds_validated(self):
        with pytest.raises(ValueError, match="jitter"):
            jittered_grid_trajectory(8, jitter=0.6)


class TestCartesian:
    def test_count(self):
        assert cartesian_trajectory(8).shape == (64, 2)

    def test_contains_dc(self):
        pts = cartesian_trajectory(8)
        assert np.any(np.all(pts == 0.0, axis=1))

    def test_1d(self):
        pts = cartesian_trajectory(8, ndim=1)
        np.testing.assert_allclose(pts.ravel(), (np.arange(8) - 4) / 8)


class TestRosette:
    def test_recrosses_center(self):
        pts = rosette_trajectory(4096)
        r = np.linalg.norm(pts, axis=1)
        crossings = np.sum((r[:-1] > 0.05) & (r[1:] <= 0.05))
        assert crossings > 5

    def test_rejects_bad_freqs(self):
        with pytest.raises(ValueError):
            rosette_trajectory(100, f1=-1)


class TestStackOfStars:
    def test_shape(self):
        pts = stack_of_stars_3d(4, 16, nz=6)
        assert pts.shape == (6 * 4 * 16, 3)

    def test_kz_planes(self):
        pts = stack_of_stars_3d(2, 8, nz=4)
        assert len(np.unique(pts[:, 2])) == 4

    def test_jitter_z(self):
        pts = stack_of_stars_3d(2, 8, nz=4, jitter_z=0.3, rng=0)
        assert len(np.unique(pts[:, 2])) == 4
        assert np.all(pts[:, 2] >= -0.5) and np.all(pts[:, 2] < 0.5)

    def test_rejects_bad(self):
        with pytest.raises(ValueError):
            stack_of_stars_3d(2, 8, nz=0)
        with pytest.raises(ValueError):
            stack_of_stars_3d(2, 8, nz=4, jitter_z=0.9)
