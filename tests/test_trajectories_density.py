"""Unit tests for density compensation estimators."""

import numpy as np
import pytest

from repro.nufft import NufftPlan
from repro.trajectories import (
    cell_counting_density_compensation,
    pipe_menon_density_compensation,
    radial_trajectory,
    ramp_density_compensation,
    random_trajectory,
)


class TestRamp:
    def test_unit_mean(self):
        w = ramp_density_compensation(radial_trajectory(16, 32))
        assert np.mean(w) == pytest.approx(1.0)

    def test_positive(self):
        w = ramp_density_compensation(radial_trajectory(16, 32))
        assert np.all(w > 0)

    def test_proportional_to_radius(self):
        coords = radial_trajectory(4, 64)
        w = ramp_density_compensation(coords)
        r = np.linalg.norm(coords, axis=1)
        big = r > 0.1
        ratio = w[big] / r[big]
        np.testing.assert_allclose(ratio, ratio[0], rtol=1e-12)

    def test_center_not_zero(self):
        coords = np.zeros((5, 2))
        assert np.all(ramp_density_compensation(coords) > 0)


class TestCellCounting:
    def test_unit_mean(self):
        coords = random_trajectory(500, 2, rng=0)
        w = cell_counting_density_compensation(coords, (16, 16))
        assert np.mean(w) == pytest.approx(1.0)

    def test_downweights_duplicates(self):
        coords = np.concatenate([np.zeros((10, 2)), random_trajectory(10, 2, rng=1)])
        w = cell_counting_density_compensation(coords, (32, 32))
        assert w[0] < w[-1]

    def test_dim_mismatch(self):
        with pytest.raises(ValueError, match="does not match"):
            cell_counting_density_compensation(np.zeros((5, 2)), (8, 8, 8))

    def test_uniform_grid_gets_uniform_weights(self):
        from repro.trajectories import cartesian_trajectory

        coords = cartesian_trajectory(16)
        w = cell_counting_density_compensation(coords, (16, 16))
        np.testing.assert_allclose(w, 1.0)


class TestPipeMenon:
    def test_flattens_density(self):
        """After Pipe-Menon, the gridded weighted density is much
        flatter than for uniform weights."""
        coords = radial_trajectory(24, 48)
        plan = NufftPlan((24, 24), coords, width=4)
        fwd = lambda g: plan.gridder.interp(g, plan.grid_coords)
        adj = lambda v: plan.gridder.grid(plan.grid_coords, v)
        w = pipe_menon_density_compensation(coords, fwd, adj, n_iterations=12)

        def flatness(weights):
            dens = np.real(fwd(adj(weights.astype(complex))))
            return np.std(dens) / np.mean(dens)

        assert flatness(w) < 0.25 * flatness(np.ones(len(w)))

    def test_unit_mean(self):
        coords = radial_trajectory(8, 16)
        plan = NufftPlan((16, 16), coords, width=4)
        w = pipe_menon_density_compensation(
            coords,
            lambda g: plan.gridder.interp(g, plan.grid_coords),
            lambda v: plan.gridder.grid(plan.grid_coords, v),
            n_iterations=3,
        )
        assert np.mean(w) == pytest.approx(1.0)

    def test_approximates_ramp_for_radial(self):
        """For radial patterns Pipe-Menon should correlate strongly
        with the analytic ramp."""
        coords = radial_trajectory(32, 64)
        plan = NufftPlan((32, 32), coords, width=4)
        w = pipe_menon_density_compensation(
            coords,
            lambda g: plan.gridder.interp(g, plan.grid_coords),
            lambda v: plan.gridder.grid(plan.grid_coords, v),
            n_iterations=15,
        )
        ramp = ramp_density_compensation(coords)
        corr = np.corrcoef(w, ramp)[0, 1]
        # kernel-width effects flatten the extremes, so correlation is
        # strong but not perfect
        assert corr > 0.85

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError, match="n_iterations"):
            pipe_menon_density_compensation(
                np.zeros((4, 2)), lambda g: g, lambda v: v, n_iterations=0
            )
