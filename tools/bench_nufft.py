#!/usr/bin/env python
"""End-to-end NuFFT benchmark per FFT backend, with committed baseline.

Times the full forward and adjoint NuFFT (per stage: gridding, FFT,
apodization, copy) and a short CG solve for every available FFT
backend (``numpy``, ``scipy``, optionally ``pyfftw``) plus the
Toeplitz normal-operator CG fast path, then **appends** one record per
(backend, op) to ``BENCH_nufft.json`` at the repository root —
the NuFFT-level companion of ``tools/bench_trajectory.py``.

The stage breakdown is the Fig. 7 measurement of the paper: once
gridding is accelerated, the host FFT share dominates, which is what
makes the pluggable multithreaded FFT backends worth their keep.

``--dtype`` selects the precision lane(s): ``double`` (complex128),
``single`` (the true complex64 compute path), or ``both`` (default) —
each record carries its lane in a ``dtype`` field so the committed
baseline tracks the complex64 speedup over time.

``--kernel`` selects the interpolation window(s): ``kb``
(Kaiser-Bessel, default), ``es`` (exponential of semicircle), or
``both`` — each record carries its window in a ``kernel`` field.

``--check`` compares each record's headline seconds against the last
committed record of the same ``(mode, backend, op, image, m, dtype,
kernel)`` shape and fails (exit 1) on a more-than-2x regression.

Usage::

    python tools/bench_nufft.py               # full size, append
    python tools/bench_nufft.py --smoke       # CI-sized problem
    python tools/bench_nufft.py --smoke --check --dry-run   # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.nufft import NufftPlan, available_fft_backends  # noqa: E402
from repro.recon import cg_reconstruction  # noqa: E402
from repro.trajectories import radial_trajectory  # noqa: E402

SIZES = {
    "full": {"image": 256, "spokes": 402, "readout": 512, "cg_iters": 10},
    "smoke": {"image": 64, "spokes": 48, "readout": 128, "cg_iters": 4},
}

#: --check fails when headline seconds exceed baseline * this factor
REGRESSION_FACTOR = 2.0


def _best_of(fn, repeats: int = 3):
    """Best-of-N wall clock (and its return) with one untimed warm-up."""
    fn()
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _record(mode: str, size: dict, backend: str, op: str, seconds: float,
            stages: dict | None = None, dtype: str = "double",
            kernel: str = "kb") -> dict:
    rec = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
        "mode": mode,
        "backend": backend,
        "op": op,
        "image": size["image"],
        "m": size["spokes"] * size["readout"],
        "dtype": dtype,
        "kernel": kernel,
        "seconds": round(seconds, 6),
    }
    if stages:
        rec.update({k: round(v, 6) for k, v in stages.items()})
    return rec


def run_benchmark(
    mode: str,
    dtypes: tuple[str, ...] = ("double",),
    kernels: tuple[str, ...] = ("kb",),
) -> list[dict]:
    """Records for forward / adjoint / CG per backend + the Toeplitz path."""
    size = SIZES[mode]
    n = size["image"]
    coords = radial_trajectory(size["spokes"], size["readout"])
    m = coords.shape[0]
    values = np.exp(2j * np.pi * np.arange(m) / 11)
    rng = np.random.default_rng(7)
    image = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    weights = np.ones(m)

    records = []
    for backend in available_fft_backends():
        for dtype in dtypes:
            for kern in kernels:
                precision = "single" if dtype == "single" else "double"
                plan = NufftPlan(
                    (n, n),
                    coords,
                    gridder="slice_and_dice_compiled",
                    gridder_options={"backend": "csr"},
                    fft_backend=backend,
                    precision=precision,
                    kernel=kern,
                )
                vals = np.asarray(values, dtype=plan.cdtype)
                img = np.asarray(image, dtype=plan.cdtype)
                adj_s, _ = _best_of(lambda: plan.adjoint(vals))
                t = plan.timings
                records.append(
                    _record(
                        mode, size, backend, "adjoint", adj_s,
                        {
                            "gridding": t.gridding,
                            "fft": t.fft,
                            "apodization": t.apodization,
                            "copy": t.copy_seconds,
                        },
                        dtype=dtype,
                        kernel=kern,
                    )
                )
                fwd_s, _ = _best_of(lambda: plan.forward(img))
                t = plan.timings
                records.append(
                    _record(
                        mode, size, backend, "forward", fwd_s,
                        {
                            "gridding": t.gridding,
                            "fft": t.fft,
                            "apodization": t.apodization,
                            "copy": t.copy_seconds,
                        },
                        dtype=dtype,
                        kernel=kern,
                    )
                )
                cg_s, _ = _best_of(
                    lambda: cg_reconstruction(
                        plan, vals, weights,
                        n_iterations=size["cg_iters"], tolerance=1e-30,
                    ),
                    repeats=2,
                )
                records.append(
                    _record(mode, size, backend, "cg_gridding", cg_s,
                            dtype=dtype, kernel=kern)
                )
                toep_s, _ = _best_of(
                    lambda: cg_reconstruction(
                        plan, vals, weights,
                        n_iterations=size["cg_iters"], tolerance=1e-30,
                        normal="toeplitz",
                    ),
                    repeats=2,
                )
                records.append(
                    _record(mode, size, backend, "cg_toeplitz", toep_s,
                            dtype=dtype, kernel=kern)
                )
    return records


def load_records(path: Path) -> list[dict]:
    if not path.exists():
        return []
    return json.loads(path.read_text(encoding="utf-8"))


def check_regressions(baseline: list[dict], current: list[dict]) -> list[str]:
    """Failure messages for records slower than committed * factor."""
    failures = []

    def _key(r: dict) -> tuple:
        # records committed before the dtype/kernel axes existed are
        # double-precision Kaiser-Bessel
        return (
            r["mode"], r["backend"], r["op"], r["image"], r["m"],
            r.get("dtype", "double"), r.get("kernel", "kb"),
        )

    for rec in current:
        key = _key(rec)
        prior = [b for b in baseline if _key(b) == key]
        if not prior:
            continue  # no committed baseline for this shape yet
        base = prior[-1]["seconds"]
        now = rec["seconds"]
        if now > base * REGRESSION_FACTOR:
            failures.append(
                f"{rec['backend']}/{rec['op']} ({rec['mode']}): {now:.4f}s is "
                f"more than {REGRESSION_FACTOR:.0f}x above the committed "
                f"baseline {base:.4f}s"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized problem (64^2 image) instead of the full 256^2",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) on a >2x regression vs the committed baseline",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print records without appending to the output file",
    )
    parser.add_argument(
        "--dtype",
        choices=("double", "single", "both"),
        default="both",
        help="precision lane(s) to benchmark (default: both)",
    )
    parser.add_argument(
        "--kernel",
        choices=("kb", "es", "both"),
        default="kb",
        help="interpolation window(s) to benchmark (default: kb)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_nufft.json",
        help="records file (default: BENCH_nufft.json at the repo root)",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    dtypes = ("double", "single") if args.dtype == "both" else (args.dtype,)
    kernels = ("kb", "es") if args.kernel == "both" else (args.kernel,)
    baseline = load_records(args.output)
    records = run_benchmark(mode, dtypes, kernels)

    header = (
        f"{'backend':<8} {'dtype':<7} {'kern':<5} {'op':<12} {'seconds':>9} "
        f"{'fft':>8} {'grid':>8}"
    )
    print(header)
    print("-" * len(header))
    for rec in records:
        fft = rec.get("fft")
        grid = rec.get("gridding")
        print(
            f"{rec['backend']:<8} {rec['dtype']:<7} {rec['kernel']:<5} "
            f"{rec['op']:<12} {rec['seconds']:>8.4f}s "
            f"{(f'{fft:.4f}s' if fft is not None else '-'):>8} "
            f"{(f'{grid:.4f}s' if grid is not None else '-'):>8}"
        )

    status = 0
    if args.check:
        failures = check_regressions(baseline, records)
        if failures:
            print("\nperformance regressions detected:")
            for line in failures:
                print(f"  {line}")
            status = 1
        else:
            print("\nno regression vs committed baseline")

    if not args.dry_run and status == 0:
        baseline.extend(records)
        args.output.write_text(
            json.dumps(baseline, indent=2) + "\n", encoding="utf-8"
        )
        print(f"appended {len(records)} records to {args.output.name}")
    return status


if __name__ == "__main__":
    sys.exit(main())
