#!/usr/bin/env python
"""Service-level benchmark: warm-cache latency + throughput over HTTP.

Starts a real :class:`repro.service.ReconServer` (stdlib HTTP, ephemeral
port) and drives it with :class:`repro.service.ReconClient` the way a
load generator would, measuring what the service layer was built for:

- **cold vs warm**: the first CG job on a trajectory pays plan
  construction (select tables, compiled scatter plan, Toeplitz PSF);
  repeats on the same trajectory ride the worker's warm caches.  The
  benchmark *gates* on warm p50 <= ``WARM_FACTOR`` x cold — the
  service's reason to exist — and fails (exit 1) when the ratio does
  not hold, in every mode including ``--smoke``.  The gate runs at the
  paper's 256x256 image size.
- **throughput vs concurrent clients**: wall-clock jobs/second and
  client-observed p50/p99 latency while 1..N client threads keep the
  two workers busy across distinct trajectories.

Each run **appends** records to ``BENCH_service.json`` at the repo
root; ``--check`` also compares against the last committed record of
the same shape and fails on a >2x regression (the CI smoke gate runs
``--smoke --check --dry-run``).

Usage::

    python tools/bench_service.py               # full size, append
    python tools/bench_service.py --smoke       # CI-sized load
    python tools/bench_service.py --smoke --check --dry-run   # CI gate
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.service import ReconClient, ReconServer  # noqa: E402
from repro.trajectories import radial_trajectory  # noqa: E402

SIZES = {
    "full": {
        "image": 256, "spokes": 402, "readout": 512, "cg_iters": 10,
        "cold_trajectories": 3, "warm_repeats": 8,
        "tp_image": 128, "tp_spokes": 128, "tp_readout": 256,
        "tp_cg_iters": 5, "tp_jobs": 16, "tp_clients": (1, 2, 4),
    },
    "smoke": {
        # the warm<=0.5x cold gate still runs at the paper's 256^2 image
        # size (fewer spokes/iterations keep the CI leg under a minute)
        "image": 256, "spokes": 64, "readout": 256, "cg_iters": 4,
        "cold_trajectories": 2, "warm_repeats": 4,
        "tp_image": 64, "tp_spokes": 32, "tp_readout": 64,
        "tp_cg_iters": 3, "tp_jobs": 8, "tp_clients": (1, 2),
    },
}

#: --check fails when headline seconds exceed baseline * this factor
REGRESSION_FACTOR = 2.0
#: hard gate: warm p50 job seconds must be <= cold * this factor
WARM_FACTOR = 0.5


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty list."""
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q / 100 * (len(ordered) - 1)))))
    return ordered[rank]


def _stamp() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime())


def _sample_problem(image: int, spokes: int, readout: int):
    """Trajectory + synthetic samples + flat DCF for one job shape."""
    coords = radial_trajectory(spokes, readout)
    m = coords.shape[0]
    samples = np.exp(2j * np.pi * np.arange(m) / 11)
    weights = np.ones(m)
    return coords, samples, weights


def bench_warm_vs_cold(url: str, size: dict, mode: str) -> dict:
    """One record: cold first-job seconds vs warm-repeat percentiles.

    "cold" = median server-side job seconds over ``cold_trajectories``
    distinct trajectories, each hitting the plan cache for the first
    time; "warm" = percentiles over ``warm_repeats`` re-submissions of
    the *first* trajectory (its first, cold job excluded).  Server-side
    ``result.seconds`` is used so the gate measures cache warmth, not
    client polling jitter.
    """
    client = ReconClient(url, timeout=600.0)
    cold, warm, wall = [], [], []
    base = None
    for i in range(size["cold_trajectories"]):
        coords, samples, weights = _sample_problem(
            size["image"], size["spokes"] + i, size["readout"]
        )
        if base is None:
            base = (coords, samples, weights)
        client.reconstruct(
            (size["image"],) * 2, coords, samples, weights=weights,
            method="cg", timeout=600.0, n_iterations=size["cg_iters"],
        )
        record = client.last_status
        assert record["result"]["plan_cache"] == "miss", "expected a cold job"
        cold.append(record["result"]["seconds"])
    coords, samples, weights = base
    for _ in range(size["warm_repeats"]):
        t0 = time.perf_counter()
        client.reconstruct(
            (size["image"],) * 2, coords, samples, weights=weights,
            method="cg", timeout=600.0, n_iterations=size["cg_iters"],
        )
        wall.append(time.perf_counter() - t0)
        record = client.last_status
        assert record["result"]["plan_cache"] == "hit", "expected a warm job"
        warm.append(record["result"]["seconds"])
    cold_s = statistics.median(cold)
    warm_p50 = _percentile(warm, 50)
    return {
        "timestamp": _stamp(),
        "mode": mode,
        "scenario": "warm_vs_cold",
        "image": size["image"],
        "m": size["spokes"] * size["readout"],
        "cg_iters": size["cg_iters"],
        "cold_seconds": round(cold_s, 6),
        "seconds": round(warm_p50, 6),  # headline = warm p50
        "warm_p99": round(_percentile(warm, 99), 6),
        "warm_wall_p50": round(_percentile(wall, 50), 6),
        "warm_over_cold": round(warm_p50 / cold_s, 4),
    }


def bench_throughput(url: str, size: dict, mode: str) -> list[dict]:
    """One record per client count: jobs/second + client-side latency."""
    problems = [
        _sample_problem(size["tp_image"], size["tp_spokes"] + i,
                        size["tp_readout"])
        for i in range(4)
    ]
    records = []
    for n_clients in size["tp_clients"]:
        latencies: list[float] = []
        lock = threading.Lock()

        def _client_loop(idx: int) -> None:
            client = ReconClient(url, timeout=600.0)
            for j in range(size["tp_jobs"] // n_clients):
                coords, samples, weights = problems[(idx + j) % len(problems)]
                t0 = time.perf_counter()
                # poll finely: these jobs finish in tens of ms, and the
                # client's production backoff (doubling toward 0.5s)
                # would dominate the latency being measured
                job_id = client.submit(
                    (size["tp_image"],) * 2, coords, samples,
                    weights=weights, method="cg", wait_for_slot=True,
                    n_iterations=size["tp_cg_iters"],
                )
                record = client.wait(job_id, timeout=600.0,
                                     poll=0.002, max_poll=0.02)
                client.result_image(record)
                elapsed = time.perf_counter() - t0
                with lock:
                    latencies.append(elapsed)

        threads = [
            threading.Thread(target=_client_loop, args=(i,))
            for i in range(n_clients)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        records.append({
            "timestamp": _stamp(),
            "mode": mode,
            "scenario": "throughput",
            "clients": n_clients,
            "image": size["tp_image"],
            "m": size["tp_spokes"] * size["tp_readout"],
            "jobs": len(latencies),
            "seconds": round(_percentile(latencies, 50), 6),  # headline p50
            "p99": round(_percentile(latencies, 99), 6),
            "jobs_per_second": round(len(latencies) / wall, 4),
        })
    return records


def run_benchmark(mode: str) -> tuple[list[dict], dict]:
    """All records plus the final /stats payload (for the report)."""
    size = SIZES[mode]
    with ReconServer(port=0, workers=2, max_pending=64) as server:
        client = ReconClient(server.url)
        records = [bench_warm_vs_cold(server.url, size, mode)]
        records.extend(bench_throughput(server.url, size, mode))
        stats = client.stats()
    return records, stats


def load_records(path: Path) -> list[dict]:
    if not path.exists():
        return []
    return json.loads(path.read_text(encoding="utf-8"))


def check_warm_gate(records: list[dict]) -> list[str]:
    """Failure messages when the warm cache is not earning its keep."""
    failures = []
    for rec in records:
        if rec.get("scenario") != "warm_vs_cold":
            continue
        if rec["seconds"] > rec["cold_seconds"] * WARM_FACTOR:
            failures.append(
                f"warm p50 {rec['seconds']:.4f}s exceeds "
                f"{WARM_FACTOR:.1f}x cold {rec['cold_seconds']:.4f}s "
                f"(ratio {rec['warm_over_cold']:.2f})"
            )
    return failures


def check_regressions(baseline: list[dict], current: list[dict]) -> list[str]:
    """Failure messages for records slower than committed * factor."""
    failures = []

    def _key(r: dict) -> tuple:
        return (
            r["mode"], r["scenario"], r.get("clients"), r["image"], r["m"],
        )

    for rec in current:
        prior = [b for b in baseline if _key(b) == _key(rec)]
        if not prior:
            continue  # no committed baseline for this shape yet
        base = prior[-1]["seconds"]
        if rec["seconds"] > base * REGRESSION_FACTOR:
            failures.append(
                f"{rec['scenario']} ({rec['mode']}"
                f"{', ' + str(rec['clients']) + ' clients' if rec.get('clients') else ''}): "
                f"{rec['seconds']:.4f}s is more than "
                f"{REGRESSION_FACTOR:.0f}x above the committed baseline "
                f"{base:.4f}s"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized load (the warm<=0.5x cold gate still runs at 256^2)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) on a >2x regression vs the committed baseline",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print records without appending to the output file",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_service.json",
        help="records file (default: BENCH_service.json at the repo root)",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    baseline = load_records(args.output)
    records, stats = run_benchmark(mode)

    header = f"{'scenario':<14} {'clients':>7} {'p50':>9} {'p99/cold':>9} {'jobs/s':>8}"
    print(header)
    print("-" * len(header))
    for rec in records:
        other = rec.get("p99", rec.get("cold_seconds"))
        jps = rec.get("jobs_per_second")
        print(
            f"{rec['scenario']:<14} {rec.get('clients') or 1:>7} "
            f"{rec['seconds']:>8.4f}s {other:>8.4f}s "
            f"{(f'{jps:.2f}' if jps is not None else '-'):>8}"
        )
    warm = records[0]
    print(
        f"\nwarm/cold ratio: {warm['warm_over_cold']:.2f} "
        f"(gate: <= {WARM_FACTOR:.1f})"
    )
    pool = stats["pool"]
    print(
        f"pool: hit_rate={pool['hit_rate']:.2f} peak_bytes={pool['peak_bytes']}"
    )
    # lifecycle health: a load run that wedged workers, tripped
    # breakers, or leaned on checkpoint resume should say so here,
    # not only in /stats
    open_breakers = stats.get("open_breakers", [])
    print(
        "lifecycle: "
        f"cancelled={stats.get('jobs_cancelled', 0)} "
        f"deadline_exceeded={stats.get('jobs_deadline_exceeded', 0)} "
        f"resumed={stats.get('jobs_resumed', 0)} "
        f"deduplicated={stats.get('deduplicated', 0)} "
        f"watchdog_restarts={stats.get('watchdog_restarts', 0)} "
        f"open_breakers={','.join(open_breakers) if open_breakers else 'none'}"
    )

    status = 0
    failures = check_warm_gate(records)
    if args.check:
        failures += check_regressions(baseline, records)
    if failures:
        print("\nservice performance gate failed:")
        for line in failures:
            print(f"  {line}")
        status = 1
    elif args.check:
        print("\nno regression vs committed baseline")

    if not args.dry_run and status == 0:
        baseline.extend(records)
        args.output.write_text(
            json.dumps(baseline, indent=2) + "\n", encoding="utf-8"
        )
        print(f"appended {len(records)} records to {args.output.name}")
    return status


if __name__ == "__main__":
    sys.exit(main())
