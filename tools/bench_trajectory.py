#!/usr/bin/env python
"""Trajectory gridding benchmark with a committed regression baseline.

Times warm (table-/plan-cache hit) and cold gridding for the serial
engine, both compiled-plan backends, and the numba JIT engine (which
degrades to the NumPy lane when numba is absent — the record's
``exec_lane`` field says which lane actually ran) on a fixed random
trajectory, then **appends** one record per engine to
``BENCH_gridding.json`` at the repository root.  The committed file
doubles as the regression baseline: ``--check`` compares each engine's
warm speedup over the serial engine against the last committed record
for the same ``(mode, engine, m, grid, width, dtype, kernel)`` shape
and fails (exit 1) on a more-than-2x regression.

Usage::

    python tools/bench_trajectory.py              # full size, append
    python tools/bench_trajectory.py --smoke      # CI-sized problem
    python tools/bench_trajectory.py --smoke --check   # CI gate
    python tools/bench_trajectory.py --dry-run    # print, don't write

The full problem matches the ablation benchmark
(``benchmarks/test_ablation_compiled_plan.py``): M = 65536 samples on
a 256^2 grid with W = 4.  Smoke mode shrinks to M = 8192 on 128^2 so
the CI job finishes in seconds while still exercising every code path
(plan compile, plan hit, CSR matvec).

``--dtype`` selects the working dtype: ``double`` (complex128),
``single`` (complex64 setup, float32 tables/weights), or ``both``
(default).  Each record carries its lane in a ``dtype`` field; the
warm speedup is always measured against the serial engine *of the
same lane* so the two lanes stay comparable over time.

``--kernel`` selects the interpolation window(s): ``kb``
(Kaiser-Bessel, default), ``es`` (exponential of semicircle), or
``both`` — each record carries its window in a ``kernel`` field.

``--stream`` switches to the bounded-memory streaming benchmark: the
trajectory is *generated to disk* block by block (never resident), then
gridded from the raw files through
:class:`repro.gridding.SampleStream.from_file` with a fixed
``--chunk-samples`` chunk, unpipelined and pipelined.  Records carry
``chunks``, ``peak_bytes`` (the engine's own transient high water) and
``rss_mb`` (``ru_maxrss`` — the whole process).  ``--samples 1e8``
reproduces the paper-scale run; ``--max-rss-mb`` turns the RSS into a
hard gate (exit 1), which is how CI pins the O(chunk + grid) claim.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.gridding import GriddingSetup, make_gridder  # noqa: E402
from repro.kernels import KernelLUT, make_kernel  # noqa: E402
from repro.trajectories import random_trajectory  # noqa: E402

#: engine name -> extra make_gridder kwargs
ENGINES = {
    "slice_and_dice": {},
    "slice_and_dice_compiled": {},
    "slice_and_dice_compiled[csr]": {"backend": "csr"},
    "slice_and_dice_jit": {},
}

SIZES = {
    "full": {"m": 65536, "grid": 256, "width": 4},
    "smoke": {"m": 8192, "grid": 128, "width": 4},
}

#: default --stream sample counts (full matches the paper-scale claim)
STREAM_SAMPLES = {"full": 100_000_000, "smoke": 300_000}

#: --check fails when warm speedup drops below baseline / this factor
REGRESSION_FACTOR = 2.0


def _best_of(fn, repeats: int = 5) -> float:
    """Best-of-N wall clock with one untimed warm-up call."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_benchmark(
    mode: str,
    dtypes: tuple[str, ...] = ("double",),
    kernels: tuple[str, ...] = ("kb",),
) -> list[dict]:
    """One record per (engine, dtype, kernel) for the given problem size."""
    size = SIZES[mode]
    m, g, w = size["m"], size["grid"], size["width"]
    coords = np.mod(random_trajectory(m, 2, rng=0), 1.0) * g
    rng = np.random.default_rng(7)
    values = rng.standard_normal(m) + 1j * rng.standard_normal(m)

    records = []
    for dtype_name in dtypes:
        cdtype = np.complex64 if dtype_name == "single" else np.complex128
        for kern in kernels:
            setup = GriddingSetup(
                (g, g), KernelLUT(make_kernel(kern, w), 64), dtype=cdtype
            )
            vals = values.astype(cdtype)
            serial_warm = None
            for engine, kwargs in ENGINES.items():
                name = engine.split("[", 1)[0]
                gridder = make_gridder(name, setup, **kwargs)
                t0 = time.perf_counter()
                gridder.grid(coords, vals)  # cold: table build / plan compile
                cold = time.perf_counter() - t0
                misses = gridder.stats.cache_misses
                warm = _best_of(lambda: gridder.grid(coords, vals))
                hits = gridder.stats.cache_hits
                if serial_warm is None:  # dict order: serial engine runs first
                    serial_warm = warm
                records.append(
                    {
                        "timestamp": time.strftime(
                            "%Y-%m-%dT%H:%M:%S", time.gmtime()
                        ),
                        "mode": mode,
                        "engine": engine,
                        "m": m,
                        "grid": g,
                        "width": w,
                        "dtype": dtype_name,
                        "kernel": kern,
                        "exec_lane": gridder.stats.exec_lane,
                        "seconds_cold": round(cold, 6),
                        "seconds_warm": round(warm, 6),
                        "plan_hits": int(hits),
                        "plan_misses": int(misses),
                        "warm_speedup_vs_serial": round(serial_warm / warm, 3),
                    }
                )
    return records


def _write_radial_files(
    coords_path: Path, values_path: Path, m: int, g: int, block: int = 1_000_000
) -> None:
    """Generate a 2-D radial-ish trajectory + values straight to disk.

    Blocks are seeded per index so the files are deterministic and no
    more than one block is ever resident — generation itself is
    O(block), matching the O(chunk) promise of the read side.  Files
    already on disk at the right size are reused verbatim (they are
    deterministic), so an interrupted run resumes without paying the
    multi-GB generation again.
    """
    if (
        coords_path.exists()
        and coords_path.stat().st_size == m * 2 * 8
        and values_path.exists()
        and values_path.stat().st_size == m * 16
    ):
        return
    with open(coords_path, "wb") as cf, open(values_path, "wb") as vf:
        for lo in range(0, m, block):
            n = min(block, m - lo)
            rng = np.random.default_rng(lo)
            # radial spokes: radius in [0, g/2), angle uniform, recentered
            radius = rng.uniform(0.0, 0.5, n) * g
            theta = rng.uniform(0.0, 2.0 * np.pi, n)
            coords = np.empty((n, 2), dtype=np.float64)
            coords[:, 0] = np.mod(radius * np.cos(theta), g)
            coords[:, 1] = np.mod(radius * np.sin(theta), g)
            coords.tofile(cf)
            vals = rng.standard_normal(n) + 1j * rng.standard_normal(n)
            vals.astype(np.complex128).tofile(vf)


def run_stream_benchmark(
    mode: str, samples: int, chunk_samples: int, workdir: Path
) -> list[dict]:
    """Streamed-adjoint records (unpipelined + pipelined) from raw files."""
    import resource

    from repro.gridding import SampleStream

    size = SIZES[mode]
    g, w = size["grid"], size["width"]
    coords_path = workdir / "stream_coords.f64"
    values_path = workdir / "stream_values.c128"
    print(f"generating {samples} samples to {workdir} ...", flush=True)
    _write_radial_files(coords_path, values_path, samples, g)

    setup = GriddingSetup((g, g), KernelLUT(make_kernel("kb", w), 64))
    records = []
    for pipelined in (False, True):
        gridder = make_gridder(
            "slice_and_dice_streaming",
            setup,
            chunk_samples=chunk_samples,
            pipelined=pipelined,
        )
        stream = SampleStream.from_file(
            coords_path,
            m=samples,
            ndim=2,
            values_path=values_path,
            chunk_samples=chunk_samples,
        )
        t0 = time.perf_counter()
        gridder.grid_stream(stream)
        seconds = time.perf_counter() - t0
        rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
        records.append(
            {
                "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
                "mode": "stream",
                "engine": "slice_and_dice_streaming"
                + ("[pipelined]" if pipelined else ""),
                "m": samples,
                "grid": g,
                "width": w,
                "dtype": "double",
                "kernel": "kb",
                "exec_lane": gridder.stats.exec_lane,
                "chunk_samples": chunk_samples,
                "chunks": int(gridder.stats.chunks),
                "peak_bytes": int(gridder.stats.peak_bytes),
                "rss_mb": round(rss_mb, 1),
                "seconds": round(seconds, 6),
                "samples_per_second": round(samples / seconds, 1),
            }
        )
    records[1]["pipelined_speedup"] = round(
        records[0]["seconds"] / records[1]["seconds"], 3
    )
    return records


def load_records(path: Path) -> list[dict]:
    if not path.exists():
        return []
    return json.loads(path.read_text(encoding="utf-8"))


def check_regressions(baseline: list[dict], current: list[dict]) -> list[str]:
    """Failure messages for every engine slower than baseline / 2."""
    failures = []
    def _key(r: dict) -> tuple:
        # pre-axis records were all complex128 Kaiser-Bessel
        return (
            r["mode"], r["engine"], r["m"], r["grid"], r["width"],
            r.get("dtype", "double"), r.get("kernel", "kb"),
        )

    for rec in current:
        if "warm_speedup_vs_serial" not in rec:
            continue  # streaming records gate on RSS, not warm speedup
        prior = [
            b for b in baseline
            if "warm_speedup_vs_serial" in b and _key(b) == _key(rec)
        ]
        if not prior:
            continue  # no committed baseline for this shape yet
        base = prior[-1]["warm_speedup_vs_serial"]
        now = rec["warm_speedup_vs_serial"]
        if now < base / REGRESSION_FACTOR:
            failures.append(
                f"{rec['engine']} ({rec['mode']}): warm speedup {now:.2f}x "
                f"is more than {REGRESSION_FACTOR:.0f}x below the committed "
                f"baseline {base:.2f}x"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized problem (M=8192, 128^2) instead of the full size",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) on a >2x warm-speedup regression vs the "
        "committed baseline",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print records without appending to the output file",
    )
    parser.add_argument(
        "--dtype",
        choices=("double", "single", "both"),
        default="both",
        help="working dtype lane(s) to benchmark (default: both)",
    )
    parser.add_argument(
        "--kernel",
        choices=("kb", "es", "both"),
        default="kb",
        help="interpolation window(s) to benchmark (default: kb)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_gridding.json",
        help="records file (default: BENCH_gridding.json at the repo root)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="run the bounded-memory streaming benchmark from raw files "
        "instead of the in-memory engine comparison",
    )
    parser.add_argument(
        "--samples",
        type=float,
        default=None,
        help="streamed sample count (accepts 1e8 notation; default "
        "3e5 smoke / 1e8 full)",
    )
    parser.add_argument(
        "--chunk-samples",
        type=int,
        default=262144,
        help="streamed chunk size (default 262144)",
    )
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        help="fail (exit 1) if the streamed run's peak RSS exceeds this",
    )
    parser.add_argument(
        "--workdir",
        type=Path,
        default=None,
        help="directory for the generated trajectory files "
        "(default: a temporary directory, deleted afterwards)",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    baseline = load_records(args.output)

    if args.stream:
        import shutil
        import tempfile

        samples = int(
            args.samples if args.samples is not None else STREAM_SAMPLES[mode]
        )
        workdir = args.workdir
        cleanup = workdir is None
        if workdir is None:
            workdir = Path(tempfile.mkdtemp(prefix="bench_stream_"))
        workdir.mkdir(parents=True, exist_ok=True)
        try:
            records = run_stream_benchmark(
                mode, samples, args.chunk_samples, workdir
            )
        finally:
            if cleanup:
                shutil.rmtree(workdir, ignore_errors=True)
        header = (
            f"{'engine':<36} {'chunks':>8} {'peak MB':>9} {'RSS MB':>9} "
            f"{'seconds':>9}"
        )
        print(header)
        print("-" * len(header))
        for rec in records:
            print(
                f"{rec['engine']:<36} {rec['chunks']:>8} "
                f"{rec['peak_bytes'] / 2**20:>8.1f} {rec['rss_mb']:>8.1f} "
                f"{rec['seconds']:>8.2f}s"
            )
        if "pipelined_speedup" in records[-1]:
            print(f"pipelined speedup: {records[-1]['pipelined_speedup']:.2f}x")
        status = 0
        if args.max_rss_mb is not None:
            worst = max(rec["rss_mb"] for rec in records)
            if worst > args.max_rss_mb:
                print(
                    f"\nRSS gate FAILED: peak {worst:.1f} MB > "
                    f"--max-rss-mb {args.max_rss_mb:.1f}"
                )
                status = 1
            else:
                print(
                    f"\nRSS gate OK: peak {worst:.1f} MB <= "
                    f"{args.max_rss_mb:.1f} MB"
                )
        if not args.dry_run and status == 0:
            baseline.extend(records)
            args.output.write_text(
                json.dumps(baseline, indent=2) + "\n", encoding="utf-8"
            )
            print(f"appended {len(records)} records to {args.output.name}")
        return status

    dtypes = ("double", "single") if args.dtype == "both" else (args.dtype,)
    kernels = ("kb", "es") if args.kernel == "both" else (args.kernel,)
    records = run_benchmark(mode, dtypes, kernels)

    header = (
        f"{'engine':<28} {'dtype':<7} {'kern':<5} {'cold':>9} {'warm':>9} "
        f"{'vs serial':>10}"
    )
    print(header)
    print("-" * len(header))
    for rec in records:
        print(
            f"{rec['engine']:<28} {rec['dtype']:<7} {rec['kernel']:<5} "
            f"{rec['seconds_cold']:>8.4f}s "
            f"{rec['seconds_warm']:>8.4f}s "
            f"{rec['warm_speedup_vs_serial']:>9.2f}x"
        )

    status = 0
    if args.check:
        failures = check_regressions(baseline, records)
        if failures:
            print("\nperformance regressions detected:")
            for line in failures:
                print(f"  {line}")
            status = 1
        else:
            print("\nno regression vs committed baseline")

    if not args.dry_run and status == 0:
        baseline.extend(records)
        args.output.write_text(
            json.dumps(baseline, indent=2) + "\n", encoding="utf-8"
        )
        print(f"appended {len(records)} records to {args.output.name}")
    return status


if __name__ == "__main__":
    sys.exit(main())
