#!/usr/bin/env python
"""Trajectory gridding benchmark with a committed regression baseline.

Times warm (table-/plan-cache hit) and cold gridding for the serial
engine, both compiled-plan backends, and the numba JIT engine (which
degrades to the NumPy lane when numba is absent — the record's
``exec_lane`` field says which lane actually ran) on a fixed random
trajectory, then **appends** one record per engine to
``BENCH_gridding.json`` at the repository root.  The committed file
doubles as the regression baseline: ``--check`` compares each engine's
warm speedup over the serial engine against the last committed record
for the same ``(mode, engine, m, grid, width, dtype, kernel)`` shape
and fails (exit 1) on a more-than-2x regression.

Usage::

    python tools/bench_trajectory.py              # full size, append
    python tools/bench_trajectory.py --smoke      # CI-sized problem
    python tools/bench_trajectory.py --smoke --check   # CI gate
    python tools/bench_trajectory.py --dry-run    # print, don't write

The full problem matches the ablation benchmark
(``benchmarks/test_ablation_compiled_plan.py``): M = 65536 samples on
a 256^2 grid with W = 4.  Smoke mode shrinks to M = 8192 on 128^2 so
the CI job finishes in seconds while still exercising every code path
(plan compile, plan hit, CSR matvec).

``--dtype`` selects the working dtype: ``double`` (complex128),
``single`` (complex64 setup, float32 tables/weights), or ``both``
(default).  Each record carries its lane in a ``dtype`` field; the
warm speedup is always measured against the serial engine *of the
same lane* so the two lanes stay comparable over time.

``--kernel`` selects the interpolation window(s): ``kb``
(Kaiser-Bessel, default), ``es`` (exponential of semicircle), or
``both`` — each record carries its window in a ``kernel`` field.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.gridding import GriddingSetup, make_gridder  # noqa: E402
from repro.kernels import KernelLUT, make_kernel  # noqa: E402
from repro.trajectories import random_trajectory  # noqa: E402

#: engine name -> extra make_gridder kwargs
ENGINES = {
    "slice_and_dice": {},
    "slice_and_dice_compiled": {},
    "slice_and_dice_compiled[csr]": {"backend": "csr"},
    "slice_and_dice_jit": {},
}

SIZES = {
    "full": {"m": 65536, "grid": 256, "width": 4},
    "smoke": {"m": 8192, "grid": 128, "width": 4},
}

#: --check fails when warm speedup drops below baseline / this factor
REGRESSION_FACTOR = 2.0


def _best_of(fn, repeats: int = 5) -> float:
    """Best-of-N wall clock with one untimed warm-up call."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_benchmark(
    mode: str,
    dtypes: tuple[str, ...] = ("double",),
    kernels: tuple[str, ...] = ("kb",),
) -> list[dict]:
    """One record per (engine, dtype, kernel) for the given problem size."""
    size = SIZES[mode]
    m, g, w = size["m"], size["grid"], size["width"]
    coords = np.mod(random_trajectory(m, 2, rng=0), 1.0) * g
    rng = np.random.default_rng(7)
    values = rng.standard_normal(m) + 1j * rng.standard_normal(m)

    records = []
    for dtype_name in dtypes:
        cdtype = np.complex64 if dtype_name == "single" else np.complex128
        for kern in kernels:
            setup = GriddingSetup(
                (g, g), KernelLUT(make_kernel(kern, w), 64), dtype=cdtype
            )
            vals = values.astype(cdtype)
            serial_warm = None
            for engine, kwargs in ENGINES.items():
                name = engine.split("[", 1)[0]
                gridder = make_gridder(name, setup, **kwargs)
                t0 = time.perf_counter()
                gridder.grid(coords, vals)  # cold: table build / plan compile
                cold = time.perf_counter() - t0
                misses = gridder.stats.cache_misses
                warm = _best_of(lambda: gridder.grid(coords, vals))
                hits = gridder.stats.cache_hits
                if serial_warm is None:  # dict order: serial engine runs first
                    serial_warm = warm
                records.append(
                    {
                        "timestamp": time.strftime(
                            "%Y-%m-%dT%H:%M:%S", time.gmtime()
                        ),
                        "mode": mode,
                        "engine": engine,
                        "m": m,
                        "grid": g,
                        "width": w,
                        "dtype": dtype_name,
                        "kernel": kern,
                        "exec_lane": gridder.stats.exec_lane,
                        "seconds_cold": round(cold, 6),
                        "seconds_warm": round(warm, 6),
                        "plan_hits": int(hits),
                        "plan_misses": int(misses),
                        "warm_speedup_vs_serial": round(serial_warm / warm, 3),
                    }
                )
    return records


def load_records(path: Path) -> list[dict]:
    if not path.exists():
        return []
    return json.loads(path.read_text(encoding="utf-8"))


def check_regressions(baseline: list[dict], current: list[dict]) -> list[str]:
    """Failure messages for every engine slower than baseline / 2."""
    failures = []
    def _key(r: dict) -> tuple:
        # pre-axis records were all complex128 Kaiser-Bessel
        return (
            r["mode"], r["engine"], r["m"], r["grid"], r["width"],
            r.get("dtype", "double"), r.get("kernel", "kb"),
        )

    for rec in current:
        prior = [b for b in baseline if _key(b) == _key(rec)]
        if not prior:
            continue  # no committed baseline for this shape yet
        base = prior[-1]["warm_speedup_vs_serial"]
        now = rec["warm_speedup_vs_serial"]
        if now < base / REGRESSION_FACTOR:
            failures.append(
                f"{rec['engine']} ({rec['mode']}): warm speedup {now:.2f}x "
                f"is more than {REGRESSION_FACTOR:.0f}x below the committed "
                f"baseline {base:.2f}x"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized problem (M=8192, 128^2) instead of the full size",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) on a >2x warm-speedup regression vs the "
        "committed baseline",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print records without appending to the output file",
    )
    parser.add_argument(
        "--dtype",
        choices=("double", "single", "both"),
        default="both",
        help="working dtype lane(s) to benchmark (default: both)",
    )
    parser.add_argument(
        "--kernel",
        choices=("kb", "es", "both"),
        default="kb",
        help="interpolation window(s) to benchmark (default: kb)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_gridding.json",
        help="records file (default: BENCH_gridding.json at the repo root)",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    dtypes = ("double", "single") if args.dtype == "both" else (args.dtype,)
    kernels = ("kb", "es") if args.kernel == "both" else (args.kernel,)
    baseline = load_records(args.output)
    records = run_benchmark(mode, dtypes, kernels)

    header = (
        f"{'engine':<28} {'dtype':<7} {'kern':<5} {'cold':>9} {'warm':>9} "
        f"{'vs serial':>10}"
    )
    print(header)
    print("-" * len(header))
    for rec in records:
        print(
            f"{rec['engine']:<28} {rec['dtype']:<7} {rec['kernel']:<5} "
            f"{rec['seconds_cold']:>8.4f}s "
            f"{rec['seconds_warm']:>8.4f}s "
            f"{rec['warm_speedup_vs_serial']:>9.2f}x"
        )

    status = 0
    if args.check:
        failures = check_regressions(baseline, records)
        if failures:
            print("\nperformance regressions detected:")
            for line in failures:
                print(f"  {line}")
            status = 1
        else:
            print("\nno regression vs committed baseline")

    if not args.dry_run and status == 0:
        baseline.extend(records)
        args.output.write_text(
            json.dumps(baseline, indent=2) + "\n", encoding="utf-8"
        )
        print(f"appended {len(records)} records to {args.output.name}")
    return status


if __name__ == "__main__":
    sys.exit(main())
