#!/usr/bin/env python
"""Dead-link check for the repository's markdown documentation.

Scans ``README.md`` and ``docs/*.md`` for markdown links and inline
file references and verifies that every *relative* target exists on
disk (anchors are stripped; external ``http(s)``/``mailto`` targets are
skipped).  Exits nonzero listing every dead link — run by the CI docs
job and by ``tests/test_docs.py``.

``--require PATH ...`` additionally fails unless every named file is
part of the scanned set — the CI docs job uses it to guarantee the
service and architecture guides stay covered (a deleted or renamed
guide would otherwise silently shrink the check).

Usage::

    python tools/check_links.py [repo_root] [--require PATH ...]
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: [text](target) — markdown inline links
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: schemes that are not filesystem paths
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_doc_files(root: Path):
    """The markdown files the check covers."""
    readme = root / "README.md"
    if readme.exists():
        yield readme
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.glob("*.md"))


def dead_links(path: Path, root: Path) -> list[tuple[str, str]]:
    """(target, reason) for every broken relative link in ``path``."""
    bad = []
    text = path.read_text(encoding="utf-8")
    for target in _LINK.findall(text):
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        plain = target.split("#", 1)[0]
        if not plain:
            continue
        resolved = (path.parent / plain).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            bad.append((target, "escapes the repository"))
            continue
        if not resolved.exists():
            bad.append((target, "target does not exist"))
    return bad


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "root",
        nargs="?",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout this script lives in)",
    )
    parser.add_argument(
        "--require",
        nargs="+",
        type=Path,
        default=(),
        metavar="PATH",
        help="root-relative markdown files that must be in the scanned set",
    )
    args = parser.parse_args(argv[1:])
    root = args.root

    scanned = []
    failures = []
    for path in iter_doc_files(root):
        scanned.append(path.resolve())
        for target, reason in dead_links(path, root):
            failures.append(f"{path.relative_to(root)}: {target} ({reason})")
    for required in args.require:
        if (root / required).resolve() not in scanned:
            failures.append(f"{required}: required file missing from the scan")
    if failures:
        print("dead links found:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"checked {len(scanned)} markdown files: all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
